"""The experiment harness: (app x kernel x dataset) sweeps producing CSVs.

Mirrors the artifact's ``run.sh``, generalized over the application
registry: any registered app (:func:`repro.engine.available_apps`) can
be swept over the corpus with any schedule kernel, plus the app's own
hardwired baselines (SpMV competes against ``cub`` and ``cusparse``).
The output schema is the paper's appendix sample --

    kernel,dataset,rows,cols,nnzs,elapsed

``elapsed`` is the simulated kernel time in model milliseconds.  Sweeps
of a non-default app prepend an ``app`` column.

Performance knobs
-----------------
The sweep hot path is tunable along three independent axes; all three
are exposed by the CLI (``python -m repro sweep ...``) as well:

``executor`` (CLI ``--executor {serial,thread,process}``)
    How independent cells fan out.  ``thread`` shares one address space
    (cheap, but pure-Python sections contend on the GIL); ``process``
    runs dataset shards on a worker pool -- each shard builds its
    problem and oracle exactly once and runs every kernel of the cell
    against them, small shards are *batched* into one pickle crossing,
    and CSR payloads travel through shared memory instead of the pickle
    stream (:mod:`repro.engine.worker_pool`).  ``serial`` forces the
    in-process loop.
``keep_pool`` / ``pool`` (CLI ``--keep-pool``)
    Process-pool persistence.  By default each ``run_suite`` call spawns
    and tears down its own pool; ``keep_pool=True`` routes the sweep
    through the module-wide persistent
    :func:`~repro.engine.worker_pool.default_executor`, so repeated
    sweeps (any app) reuse warm workers -- imports paid once, worker
    plan caches kept hot.  Pass ``pool=SweepExecutor(...)`` to manage
    the lifetime yourself (context manager).
``transport`` (CLI ``--transport {auto,shm,pickle}``)
    How dataset payloads reach process-pool workers: ``auto`` packs any
    codec-claimed payload (CSR matrices, COO sparse tensors, dense
    arrays -- see :class:`~repro.engine.worker_pool.ShmCodec`) into a
    shared-memory array bundle published once and reattached zero-copy
    in workers, falling back to pickling for unclaimed payloads;
    ``pickle`` forces the fallback; ``shm`` errors instead of falling
    back.  Warm pool workers additionally serve each shard's problem
    and oracle from a bounded content-keyed
    :class:`~repro.engine.worker_pool.ProblemCache` (budgets:
    ``REPRO_PROBLEM_CACHE_ENTRIES`` / ``REPRO_PROBLEM_CACHE_BYTES``),
    so steady-state sweeps skip both rebuilds; rows record the
    ``problem_cache`` outcome in ``meta``.
``max_workers`` (CLI ``--workers``)
    Pool width for either executor.  ``None``/1 with
    ``executor="thread"`` degrades to serial; ``process`` defaults to
    ``os.cpu_count()`` capped by the number of dataset shards.
``plan_cache_dir`` / ``plan_store`` (CLI ``--plan-cache-dir`` / ``--plan-store``)
    Persistent plan storage (:mod:`repro.engine.plan_cache`).  Repeated
    sweeps of the same grid -- and every process-pool worker -- start
    warm: plans are keyed by content fingerprints and survive process
    exit.  ``plan_cache_dir`` is the one-file-per-plan layout;
    ``plan_store`` is the corpus-scale append-only single-file journal
    (:mod:`repro.engine.plan_store`).  Workers inherit either knob
    automatically.

Results are returned in deterministic (dataset, kernel) order regardless
of executor or worker count, and row sets are identical across all three
executors for the same seed.
"""

from __future__ import annotations

import csv
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..core.policy import as_policy
from ..core.schedule import available_schedules
from ..engine import (
    DEFAULT_SEED,
    ExecutionContext,
    configure_global_plan_cache,
    get_app,
    run_app,
)
from ..gpusim.arch import GpuSpec, V100
from ..sparse.corpus import Dataset, build_corpus

__all__ = [
    "SweepRow",
    "SpmvRow",
    "run_cell",
    "expand_datasets",
    "run_suite",
    "run_spmv_kernel",
    "run_spmv_suite",
    "write_csv",
    "SPMV_KERNELS",
    "PAPER_FIELDS",
    "EXECUTORS",
    "POLICY_KERNELS",
]

#: Kernel identifiers the harness understands for SpMV.  Framework
#: schedules are referenced by their registry names; ``heuristic`` is the
#: Section 6.2 selector; ``cub`` and ``cusparse`` are the baselines.
SPMV_KERNELS = (
    "thread_mapped",
    "warp_mapped",
    "block_mapped",
    "group_mapped",
    "merge_path",
    "nonzero_split",
    "lrb",
    "heuristic",
    "cub",
    "cusparse",
)

#: The paper's CSV schema (appendix sample).
PAPER_FIELDS = ("kernel", "dataset", "rows", "cols", "nnzs", "elapsed")

#: Fan-out strategies :func:`run_suite` understands.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepRow:
    """One harness result cell, in the paper's CSV schema."""

    kernel: str
    dataset: str
    rows: int
    cols: int
    nnzs: int
    elapsed: float  # model milliseconds
    #: The swept application (the paper's CSV is SpMV-only; other apps
    #: surface this as an extra leading column).
    app: str = "spmv"
    #: Extra diagnostics not in the paper's schema (kept out of the CSV
    #: unless asked for).
    meta: dict = field(default_factory=dict, compare=False)

    def as_csv_dict(self, include_app: bool = False) -> dict:
        row = {
            "kernel": self.kernel,
            "dataset": self.dataset,
            "rows": self.rows,
            "cols": self.cols,
            "nnzs": self.nnzs,
            "elapsed": self.elapsed,
        }
        if include_app:
            row = {"app": self.app, **row}
        return row


#: Backward-compatible alias: the SpMV-era row type.
SpmvRow = SweepRow


def _build_problem(app_spec, app: str, dataset: Dataset, seed: int):
    """Derive the app's deterministic problem instance from one dataset."""
    matrix = dataset.matrix
    if app_spec.accepts is not None and not app_spec.accepts(matrix):
        raise ValueError(
            f"app {app!r} cannot run on dataset {dataset.name!r} "
            f"(shape {matrix.shape})"
        )
    if app_spec.sweep_problem is None:  # pragma: no cover - all built-ins have one
        raise ValueError(f"app {app!r} does not define a sweep problem")
    return app_spec.sweep_problem(matrix, seed)


#: Kernel identifiers that are schedule *policies*, not registry names:
#: ``heuristic`` is the Section 6.2 selector, ``oracle_best`` prices every
#: candidate schedule and picks the cheapest (the paper's "best of all
#: schedules" line).
POLICY_KERNELS = ("heuristic", "oracle_best")


def _execute_cell(
    app_spec,
    app: str,
    kernel: str,
    dataset: Dataset,
    problem,
    expected,
    ctx: ExecutionContext,
    validate: bool,
    seed: int = DEFAULT_SEED,
) -> SweepRow:
    """Run one prepared (app, kernel, dataset) cell and validate it."""
    matrix = dataset.matrix
    if kernel in app_spec.baselines:
        y, stats = app_spec.baselines[kernel](problem, ctx.spec)
        meta = dict(stats.extras)
        # Baseline rows carry the same ``schedule`` extras key as policy
        # and schedule rows, so downstream consumers (BENCH_policy) never
        # special-case the kernel class.
        meta.setdefault("schedule", kernel)
    elif kernel in POLICY_KERNELS or kernel in available_schedules():
        result = run_app(app_spec, problem, ctx=ctx.with_policy(as_policy(kernel)))
        y, stats = result.output, result.stats
        # Launch extras ride along (e.g. the compiled engine's JIT mode
        # and compilation-cache hit/miss counters); the resolved schedule
        # name wins over any same-named extras key.
        meta = {**stats.extras, "schedule": result.schedule}
    else:
        known = tuple(sorted(app_spec.baselines)) + POLICY_KERNELS + tuple(
            available_schedules()
        )
        raise KeyError(f"unknown kernel {kernel!r}; known: {known}")

    # The artifact's --validate flag: every cell checks its output.
    if validate and expected is not None:
        if not app_spec.match(y, expected):
            raise AssertionError(
                f"validation failed for app={app} kernel={kernel} "
                f"dataset={dataset.name}"
            )
    if validate and app_spec.sample_check is not None:
        # Second, genuinely independent oracle: a seeded sampled dense
        # check (O(samples * row_nnz)), so the vector path is validated
        # against more than the function that produced it.
        if not app_spec.sample_check(problem, y, _sample_seed(app, kernel, dataset, seed)):
            raise AssertionError(
                f"sampled dense check failed for app={app} kernel={kernel} "
                f"dataset={dataset.name}"
            )
    meta.update(
        simt_efficiency=stats.simt_efficiency,
        occupancy=stats.occupancy,
        utilization=stats.utilization,
    )
    return SweepRow(
        app=app,
        kernel=kernel,
        dataset=dataset.name,
        rows=matrix.num_rows,
        cols=matrix.num_cols,
        nnzs=matrix.nnz,
        elapsed=stats.elapsed_ms,
        meta=meta,
    )


def _sample_seed(app: str, kernel: str, dataset: Dataset, seed: int) -> int:
    """Deterministic per-cell seed for the sampled validation draws."""
    import zlib

    tag = f"{app}/{kernel}/{dataset.name}/{seed}".encode()
    return zlib.crc32(tag) & 0x7FFFFFFF


def run_cell(
    app: str,
    kernel: str,
    dataset: Dataset,
    spec: GpuSpec | None = None,
    *,
    ctx: ExecutionContext | None = None,
    engine: str | None = None,
    seed: int = DEFAULT_SEED,
    validate: bool = True,
) -> SweepRow:
    """Run one (app, kernel, dataset) cell and validate the result.

    ``ctx`` is the single execution-selection argument; the loose
    ``spec=``/``engine=`` kwargs are the deprecated pre-context spelling.
    """
    ctx = ExecutionContext.from_kwargs(ctx=ctx, engine=engine, spec=spec)
    app_spec = get_app(app)
    problem = _build_problem(app_spec, app, dataset, seed)
    expected = (
        app_spec.oracle(problem)
        if validate and app_spec.oracle is not None
        else None
    )
    return _execute_cell(
        app_spec, app, kernel, dataset, problem, expected, ctx, validate, seed
    )


@dataclass(frozen=True)
class _ShardTask:
    """One picklable unit of process-pool work: a whole dataset cell.

    The worker rebuilds the (expensive) problem instance and oracle once
    and amortizes them over every kernel of the shard -- matrices cross
    the pickle boundary once per dataset, never once per cell.  The
    execution selection crosses as one :class:`ExecutionContext` (``ctx``);
    the ``spec``/``engine``/``plan_cache_dir`` fields are the deprecated
    pre-context spelling, honoured when no context is given.
    """

    app: str
    kernels: tuple
    dataset: Dataset
    spec: GpuSpec = V100
    engine: str = "vector"
    seed: int = DEFAULT_SEED
    validate: bool = True
    plan_cache_dir: str | None = None
    ctx: ExecutionContext | None = None

    def context(self) -> ExecutionContext:
        if self.ctx is not None:
            return self.ctx
        return ExecutionContext(
            engine=self.engine, spec=self.spec, plan_cache_dir=self.plan_cache_dir
        )


def _run_shard(
    task: _ShardTask,
    *,
    dataset_key: tuple | None = None,
    shared_oracle=None,
    publications: list | None = None,
) -> list[SweepRow]:
    """Process-pool worker: run every kernel of one (app, dataset) shard.

    ``dataset_key`` is the dataset's content fingerprint when the caller
    already knows it (the shm transport publishes under it); otherwise it
    is derived here.  Shards with a fingerprint serve their problem and
    oracle from the worker-resident :class:`~repro.engine.worker_pool.
    ProblemCache`, so steady-state sweeps on a warm pool skip both
    rebuilds; every row's ``meta`` records the ``problem_cache`` outcome
    plus the worker's running hit/miss/attach/publish counters.

    Cross-worker sharing: on a local miss, ``shared_oracle`` (a
    :class:`~repro.engine.worker_pool.SharedPayloadHandle` some other
    worker published) is attached instead of recomputing the oracle
    (status ``"attach"``); and when ``publications`` is a list, a
    locally-built oracle is published to shm and its ``(cache key,
    handle)`` appended for the parent to adopt.  Both are best-effort --
    any failure falls back to the local build, never changes results.
    """
    from ..engine.worker_pool import (
        attach_payload,
        dataset_content_key,
        problem_cache,
        publish_payload,
    )

    ctx = task.context()
    if ctx.plan_store is not None:
        # Warm-start the worker from the persistent plan store (and
        # persist whatever it plans for the next process).
        configure_global_plan_cache(store_path=ctx.plan_store)
    elif ctx.plan_cache_dir is not None:
        configure_global_plan_cache(ctx.plan_cache_dir)
    else:
        # No knob on this sweep: a *persistent* worker must not keep the
        # previous sweep's (possibly temporary) target attached.  Fall
        # back to the environment attachment -- the documented ambient
        # configuration workers share with their parent -- or detach.
        _restore_ambient_plan_persistence()
    app_spec = get_app(task.app)
    if dataset_key is None:
        dataset_key = dataset_content_key(task.dataset)
    cache = problem_cache()
    status = "off"
    cached = None
    if dataset_key is not None:
        # Problem construction depends on (app, dataset content, seed)
        # and the oracle additionally on ``validate``; the execution
        # context never reaches either, so it stays out of the key.
        cache_key = (task.app, dataset_key, task.seed, task.validate)
        cached = cache.lookup(cache_key)
        status = "miss" if cached is None else "hit"
    if cached is not None:
        problem, expected = cached
    else:
        problem = _build_problem(app_spec, task.app, task.dataset, task.seed)
        expected = None
        if task.validate and app_spec.oracle is not None:
            if status == "miss" and shared_oracle is not None:
                # Some other worker already built this oracle: attach
                # the published copy instead of recomputing (zero-copy
                # for bundle codecs).  ``None`` means the block vanished
                # or failed its checks -- rebuild locally.
                expected = attach_payload(shared_oracle)
            if expected is not None:
                status = "attach"
                cache.attaches += 1
            else:
                expected = app_spec.oracle(problem)
                if (
                    status == "miss"
                    and publications is not None
                    and expected is not None
                ):
                    handle = publish_payload(expected)
                    if handle is not None:
                        publications.append((cache_key, handle))
                        cache.publishes += 1
        if status in ("miss", "attach"):
            cache.store(cache_key, problem, expected)
    rows = [
        _execute_cell(
            app_spec,
            task.app,
            kernel,
            task.dataset,
            problem,
            expected,
            ctx,
            task.validate,
            task.seed,
        )
        for kernel in task.kernels
    ]
    for row in rows:
        row.meta["problem_cache"] = status
        row.meta["problem_cache_hits"] = cache.hits
        row.meta["problem_cache_misses"] = cache.misses
        row.meta["problem_cache_attaches"] = cache.attaches
        row.meta["problem_cache_publishes"] = cache.publishes
    return rows


#: One warning per process when the ambient persistence target is broken
#: (a typo'd env var must not silently degrade to no-persistence).
_AMBIENT_RESTORE_WARNED = False


def _restore_ambient_plan_persistence() -> None:
    """Point the process-global plan cache back at the env-var target.

    Reattaching an unchanged target is a no-op, so calling this per shard
    is free; an unusable env path degrades to "no persistence", honouring
    the disk layer's never-change-behaviour contract -- but warns once
    per process, so a typo'd ``REPRO_PLAN_STORE`` is visible instead of
    silently dropping persistence.
    """
    import os
    import warnings

    from ..engine import CACHE_DIR_ENV, PLAN_STORE_ENV

    store_env = os.environ.get(PLAN_STORE_ENV) or None
    dir_env = os.environ.get(CACHE_DIR_ENV) or None
    try:
        if store_env is not None:
            configure_global_plan_cache(store_path=store_env)
        elif dir_env is not None:
            configure_global_plan_cache(dir_env)
        else:
            configure_global_plan_cache(None)
    except Exception as exc:
        global _AMBIENT_RESTORE_WARNED
        if not _AMBIENT_RESTORE_WARNED:
            _AMBIENT_RESTORE_WARNED = True
            target = store_env if store_env is not None else dir_env
            env_name = PLAN_STORE_ENV if store_env is not None else CACHE_DIR_ENV
            warnings.warn(
                f"ambient plan persistence target {target!r} (from "
                f"{env_name}) is unusable ({exc!r}); continuing without "
                f"plan persistence",
                RuntimeWarning,
                stacklevel=2,
            )
        configure_global_plan_cache(None)


def expand_datasets(
    app: str,
    *,
    scale: str = "standard",
    limit: int | None = None,
    datasets: Iterable[Dataset] | None = None,
    names: Sequence[str] | None = None,
) -> list[Dataset]:
    """The datasets one sweep over ``app`` will actually run.

    Corpus expansion plus the app's acceptance filter, factored out of
    :func:`run_suite` so the sweep service admits jobs against exactly
    the dataset list a direct library call would use.  ``datasets``
    supplies explicit :class:`Dataset` objects (``limit`` then does not
    apply, matching :func:`run_suite`); ``names`` selects by dataset
    name from the expanded list and raises ``ValueError`` on unknown
    names -- admission-time validation, not a silent empty sweep.
    """
    app_spec = get_app(app)
    ds = list(datasets) if datasets is not None else build_corpus(scale, limit=limit)
    if names is not None:
        by_name = {d.name: d for d in ds}
        missing = [n for n in names if n not in by_name]
        if missing:
            known = ", ".join(sorted(by_name))
            raise ValueError(
                f"unknown datasets {missing} for scale {scale!r}; "
                f"known: {known}"
            )
        ds = [by_name[n] for n in names]
    if app_spec.accepts is not None:
        ds = [d for d in ds if app_spec.accepts(d.matrix)]
    return ds


def run_suite(
    kernels: Sequence[str],
    *,
    app: str = "spmv",
    scale: str = "standard",
    spec: GpuSpec | None = None,
    datasets: Iterable[Dataset] | None = None,
    limit: int | None = None,
    engine: str | None = None,
    seed: int = DEFAULT_SEED,
    validate: bool = True,
    max_workers: int | None = None,
    executor: str = "thread",
    plan_cache_dir: str | Path | None = None,
    plan_store: str | Path | None = None,
    ctx: ExecutionContext | None = None,
    keep_pool: bool = False,
    pool=None,
    transport: str = "auto",
) -> list[SweepRow]:
    """Run a kernel list over the corpus (the ``run.sh`` loop), generic.

    ``ctx`` is the single execution-selection argument (engine, device
    spec, plan storage, device count); the per-cell kernel name supplies
    the schedule policy.  The loose ``spec=``/``engine=``/
    ``plan_cache_dir=``/``plan_store=`` kwargs are the deprecated
    pre-context spelling; passing them alongside ``ctx`` is an error.
    The context is what crosses the process-pool pickle boundary in
    ``executor="process"`` sweeps.

    Datasets the app cannot accept (e.g. rectangular matrices for graph
    apps) are skipped.  Fan-out, pool persistence, dataset transport and
    plan persistence are controlled by the performance knobs documented
    in the module docstring (``executor`` / ``keep_pool`` / ``pool`` /
    ``transport`` / ``max_workers`` / ``plan_cache_dir`` /
    ``plan_store``); results keep the serial (dataset, kernel) order
    under every configuration.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {EXECUTORS}")
    # Validate the transport up front for *every* executor: a bogus value
    # must fail fast, not be silently ignored by serial/thread sweeps --
    # and an explicit non-default transport on an executor that will
    # never use it is a contradiction, not a no-op (the CLI rejects the
    # same combination).
    from ..engine.worker_pool import TRANSPORTS

    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; choose from {TRANSPORTS}"
        )
    if transport != "auto" and executor != "process":
        raise ValueError(
            f"transport={transport!r} requires executor='process' (dataset "
            f"transport only applies to process-pool sweeps)"
        )
    if (keep_pool or pool is not None) and executor != "process":
        raise ValueError(
            "keep_pool/pool require executor='process' (persistent pools "
            "only make sense for process fan-out)"
        )
    if keep_pool and pool is not None:
        raise ValueError("pass either keep_pool=True or pool=, not both")
    ctx = ExecutionContext.from_kwargs(
        ctx=ctx,
        engine=engine,
        spec=spec,
        plan_cache_dir=None if plan_cache_dir is None else str(plan_cache_dir),
        plan_store=None if plan_store is None else str(plan_store),
    )
    # Fail fast on unknown engines for *every* executor: a typo'd engine
    # name must raise here, in the caller's process, not as a late
    # ``Runtime`` construction error inside a worker (or never at all
    # when a cell short-circuits).
    from ..engine.dispatch import ensure_known_engine

    if isinstance(ctx.engine, str):
        ensure_known_engine(ctx.engine)
    for _label, _eng in ctx.engines:
        if isinstance(_eng, str):
            ensure_known_engine(_eng)
    app_spec = get_app(app)
    ds = expand_datasets(app, scale=scale, limit=limit, datasets=datasets)
    if ctx.plan_cache_dir is None and ctx.plan_store is None:
        return _run_suite_prepared(
            kernels, app, app_spec, ds, ctx, seed, validate,
            max_workers, executor, keep_pool, pool, transport,
        )
    # Attach the persistent layer for the duration of the sweep only:
    # callers must not find the process-global cache silently re-pointed
    # at a (possibly temporary) target after run_suite returns.
    from ..engine import global_plan_cache

    cache = global_plan_cache()
    prev_dir, prev_store = cache.cache_dir, cache.store_path
    if ctx.plan_store is not None:
        configure_global_plan_cache(store_path=ctx.plan_store)
    else:
        configure_global_plan_cache(ctx.plan_cache_dir)
    try:
        return _run_suite_prepared(
            kernels, app, app_spec, ds, ctx, seed, validate,
            max_workers, executor, keep_pool, pool, transport,
        )
    finally:
        if prev_store is not None:
            configure_global_plan_cache(store_path=prev_store)
        else:
            configure_global_plan_cache(prev_dir)


def _run_suite_prepared(
    kernels: Sequence[str],
    app: str,
    app_spec,
    ds: list[Dataset],
    ctx: ExecutionContext,
    seed: int,
    validate: bool,
    max_workers: int | None,
    executor: str,
    keep_pool: bool = False,
    pool=None,
    transport: str = "auto",
) -> list[SweepRow]:
    """The executor dispatch behind :func:`run_suite` (cache configured)."""
    if executor == "process" and ds:
        from ..engine.worker_pool import SweepExecutor, default_executor

        shards = [
            _ShardTask(
                app=app,
                kernels=tuple(kernels),
                dataset=dataset,
                seed=seed,
                validate=validate,
                ctx=ctx,
            )
            for dataset in ds
        ]
        if pool is not None:
            per_shard = pool.map_shards(shards, transport=transport)
        elif keep_pool:
            per_shard = default_executor(max_workers).map_shards(
                shards, transport=transport
            )
        else:
            with SweepExecutor(max_workers=max_workers) as ephemeral:
                per_shard = ephemeral.map_shards(shards, transport=transport)
        return [row for shard_rows in per_shard for row in shard_rows]

    # Problem construction and the oracle are per-dataset, not per-cell:
    # build them once and share across the dataset's kernels (drivers
    # treat problem inputs as read-only, so this is thread-safe too).
    def prep(dataset: Dataset):
        problem = _build_problem(app_spec, app, dataset, seed)
        expected = (
            app_spec.oracle(problem)
            if validate and app_spec.oracle is not None
            else None
        )
        return problem, expected

    def one(cell) -> SweepRow:
        dataset, kernel, problem, expected = cell
        return _execute_cell(
            app_spec, app, kernel, dataset, problem, expected, ctx,
            validate, seed,
        )

    if executor == "thread" and max_workers is not None and max_workers > 1:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            # Dataset prep (including expensive oracles) fans out too.
            prepped = list(pool.map(prep, ds))
            cells = [
                (dataset, kernel, problem, expected)
                for dataset, (problem, expected) in zip(ds, prepped)
                for kernel in kernels
            ]
            return list(pool.map(one, cells))
    rows: list[SweepRow] = []
    for dataset in ds:
        problem, expected = prep(dataset)
        rows.extend(
            one((dataset, kernel, problem, expected)) for kernel in kernels
        )
    return rows


def run_spmv_kernel(
    kernel: str,
    dataset: Dataset,
    spec: GpuSpec | None = None,
    *,
    ctx: ExecutionContext | None = None,
) -> SweepRow:
    """Run one SpMV (kernel, dataset) cell (backward-compatible wrapper).

    ``ctx`` is the :class:`~repro.engine.context.ExecutionContext`
    spelling (engine, policy, device count); the positional ``spec`` is
    the paper-era one.  Passing both is rejected by the same
    ``from_kwargs`` mutual-exclusion rule as :func:`run_cell`.
    """
    return run_cell("spmv", kernel, dataset, spec, ctx=ctx)


def run_spmv_suite(
    kernels: Sequence[str],
    *,
    scale: str = "standard",
    spec: GpuSpec | None = None,
    datasets: Iterable[Dataset] | None = None,
    limit: int | None = None,
    ctx: ExecutionContext | None = None,
) -> list[SweepRow]:
    """The SpMV sweep of the paper's evaluation (wrapper over run_suite).

    ``ctx`` threads a full :class:`~repro.engine.context.ExecutionContext`
    through to :func:`run_suite` for callers migrating off the paper-era
    API; combining it with the legacy ``spec=`` raises (``from_kwargs``
    mutual exclusion, same as :func:`run_cell`).
    """
    return run_suite(
        kernels, app="spmv", scale=scale, spec=spec, datasets=datasets,
        limit=limit, ctx=ctx,
    )


def write_csv(
    rows: Iterable[SweepRow], path: str | Path, *, include_app: bool = False
) -> Path:
    """Write harness rows in the paper's CSV schema.

    ``include_app`` prepends the swept application as a leading column
    (for multi-app sweeps; the default matches the paper's schema).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fields = (["app"] if include_app else []) + list(PAPER_FIELDS)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow(row.as_csv_dict(include_app=include_app))
    return path
