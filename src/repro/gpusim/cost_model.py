"""Analytic timing: from per-lane work descriptions to kernel time.

The vectorized execution path never steps individual threads.  Instead,
each load-balancing schedule produces (vectorized, with NumPy) the cycle
count every *thread* would accumulate, and this module folds those into
warp, block and device times:

``thread cycles -> lockstep warp max -> block (scheduler bandwidth)
-> SM list scheduling -> makespan -> milliseconds``

The same folding is applied to the SIMT interpreter's measured per-thread
charges, so the two paths agree by construction and can be cross-checked
in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .arch import GpuSpec
from .sm_scheduler import ScheduleOutcome, block_cycles_from_warps, schedule_blocks

__all__ = ["KernelStats", "warp_fold", "kernel_stats_from_thread_cycles",
           "kernel_stats_from_warp_cycles"]


@dataclass(frozen=True)
class KernelStats:
    """Timing and efficiency statistics of one simulated kernel launch."""

    elapsed_ms: float
    makespan_cycles: float
    grid_dim: int
    block_dim: int
    occupancy: float
    #: Fraction of issued lane-cycles doing useful work (1 = no divergence).
    simt_efficiency: float
    #: Device utilization while the kernel ran.
    utilization: float
    #: Share of the makespan spent in a low-occupancy tail.
    tail_fraction: float
    #: Sum over threads of charged cycles (the "useful work").
    total_thread_cycles: float
    extras: dict = field(default_factory=dict, compare=False)

    def __add__(self, other: "KernelStats") -> "KernelStats":
        """Sequential composition of two launches (e.g. frontier iterations)."""
        if not isinstance(other, KernelStats):
            return NotImplemented
        total_ms = self.elapsed_ms + other.elapsed_ms
        w = self.elapsed_ms / total_ms if total_ms > 0 else 0.5
        blend = lambda a, b: w * a + (1 - w) * b  # noqa: E731
        return KernelStats(
            elapsed_ms=total_ms,
            makespan_cycles=self.makespan_cycles + other.makespan_cycles,
            grid_dim=max(self.grid_dim, other.grid_dim),
            block_dim=max(self.block_dim, other.block_dim),
            occupancy=blend(self.occupancy, other.occupancy),
            simt_efficiency=blend(self.simt_efficiency, other.simt_efficiency),
            utilization=blend(self.utilization, other.utilization),
            tail_fraction=blend(self.tail_fraction, other.tail_fraction),
            total_thread_cycles=self.total_thread_cycles + other.total_thread_cycles,
        )


def warp_fold(thread_cycles: np.ndarray, warp_size: int) -> np.ndarray:
    """Lockstep fold: per-warp cycles = max over each warp's lanes.

    The input is padded with zeros up to a whole number of warps; a warp's
    execution time is its slowest lane's, because lanes execute in lockstep
    and idle lanes still occupy issue slots.
    """
    tc = np.asarray(thread_cycles, dtype=np.float64).reshape(-1)
    if tc.size == 0:
        return np.zeros(0)
    n_warps = -(-tc.size // warp_size)
    padded = np.zeros(n_warps * warp_size)
    padded[: tc.size] = tc
    return padded.reshape(n_warps, warp_size).max(axis=1)


def kernel_stats_from_thread_cycles(
    thread_cycles: np.ndarray,
    grid_dim: int,
    block_dim: int,
    spec: GpuSpec,
    *,
    setup_cycles: float = 0.0,
    min_body_cycles: float = 0.0,
    extras: dict | None = None,
) -> KernelStats:
    """Fold per-thread cycles (launch-ordered) into kernel statistics.

    ``thread_cycles`` may be shorter than ``grid_dim * block_dim`` (trailing
    threads charged nothing); it is zero-padded.
    """
    tc = np.asarray(thread_cycles, dtype=np.float64).reshape(-1)
    n_threads = grid_dim * block_dim
    if tc.size > n_threads:
        raise ValueError(
            f"{tc.size} thread cycle entries for a launch of {n_threads} threads"
        )
    if tc.size < n_threads:
        tc = np.pad(tc, (0, n_threads - tc.size))
    warp_size = spec.warp_size
    warps_per_block = -(-block_dim // warp_size)
    blocks = tc.reshape(grid_dim, block_dim)
    padded = np.zeros((grid_dim, warps_per_block * warp_size))
    padded[:, :block_dim] = blocks
    warp_cycles = padded.reshape(grid_dim, warps_per_block, warp_size).max(axis=2)
    return kernel_stats_from_warp_cycles(
        warp_cycles,
        grid_dim,
        block_dim,
        spec,
        total_thread_cycles=float(tc.sum()),
        setup_cycles=setup_cycles,
        min_body_cycles=min_body_cycles,
        extras=extras,
    )


def kernel_stats_from_warp_cycles(
    warp_cycles: np.ndarray,
    grid_dim: int,
    block_dim: int,
    spec: GpuSpec,
    *,
    total_thread_cycles: float | None = None,
    setup_cycles: float = 0.0,
    min_body_cycles: float = 0.0,
    extras: dict | None = None,
) -> KernelStats:
    """Fold per-warp cycles of shape ``(blocks, warps_per_block)`` into stats.

    ``setup_cycles`` is added to every warp (e.g. merge-path's binary-search
    setup phase runs on every thread before the main loop).
    ``min_body_cycles`` is a lower bound on the kernel body's duration
    regardless of parallelism -- used for the DRAM bandwidth floor of
    memory-bound kernels (total bytes moved / sustained bandwidth).
    """
    wc = np.asarray(warp_cycles, dtype=np.float64)
    if wc.ndim == 1:
        wc = wc.reshape(grid_dim, -1)
    if wc.shape[0] != grid_dim:
        raise ValueError(
            f"warp_cycles has {wc.shape[0]} blocks but grid_dim is {grid_dim}"
        )
    if setup_cycles:
        wc = wc + setup_cycles
    block_cycles = block_cycles_from_warps(wc, spec)
    outcome: ScheduleOutcome = schedule_blocks(block_cycles, block_dim, spec)
    body = max(outcome.makespan_cycles, min_body_cycles)
    makespan = body + spec.costs.kernel_launch_cycles

    if total_thread_cycles is None:
        total_thread_cycles = float(wc.sum()) * spec.warp_size
    issued = float(wc.sum()) * spec.warp_size
    simt_eff = total_thread_cycles / issued if issued > 0 else 1.0

    return KernelStats(
        elapsed_ms=spec.cycles_to_ms(makespan),
        makespan_cycles=makespan,
        grid_dim=grid_dim,
        block_dim=block_dim,
        occupancy=spec.occupancy(grid_dim, block_dim),
        simt_efficiency=min(1.0, simt_eff),
        utilization=outcome.utilization,
        tail_fraction=outcome.tail_fraction,
        total_thread_cycles=total_thread_cycles,
        extras=extras or {},
    )
