"""GPU architecture specifications for the simulator.

The simulator is parameterized by a :class:`GpuSpec`, which captures the
handful of architectural quantities that matter for load-balancing studies:
the SIMT width (warp size), the streaming-multiprocessor (SM) count and
residency limits (which drive the oversubscription model), the issue width
of an SM, and a small set of cost constants for the analytic timing model.

The default spec, :data:`V100`, approximates the NVIDIA Tesla V100 used in
the paper's evaluation.  :data:`AMD_WARP64` demonstrates the paper's point
(Section 5.2.3) that a cooperative-groups-style schedule ports to a
64-wide-wavefront architecture by changing a single constant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostParams:
    """Cycle-cost constants used by the analytic timing model.

    All values are in units of SM cycles.  They are deliberately coarse --
    the simulator's purpose is to reproduce *relative* behaviour between
    load-balancing schedules (who wins, where the crossovers are), not
    absolute hardware milliseconds.

    Attributes
    ----------
    alu:
        Cost of a simple arithmetic instruction (integer add, compare).
    fma:
        Cost of a fused multiply-add on the balanced work path (the
        ``sum += values[nz] * x[indices[nz]]`` of SpMV).
    global_load_coalesced:
        Amortized per-lane cost of a fully coalesced global memory load.
    global_load_random:
        Per-lane cost of an uncoalesced (gather) global load, e.g. the
        ``x[indices[nz]]`` gather in SpMV.
    global_store:
        Per-lane cost of a global store.
    shared_load / shared_store:
        Per-lane shared-memory (scratchpad) access cost.
    atomic:
        Cost of a global atomic operation (e.g. atomicMin in SSSP).
    sync:
        Cost of a block-wide barrier (``__syncthreads``).
    loop_overhead:
        Per-iteration loop bookkeeping (increment, compare, branch).
    range_overhead:
        *Abstraction tax*: extra per-iteration bookkeeping charged when work
        is consumed through the framework's range objects rather than a
        hand-fused loop.  This is the quantity Figure 2 measures; the paper
        reports a 2.5% geomean slowdown versus hardwired CUB.
    tile_overhead:
        Per-tile setup cost (reading row extents, writing the output).
    binary_search_step:
        Cost of one step of a binary search (used by merge-path setup and
        group-mapped ``get_tile``).
    scan_step:
        Cost of one step of a group-wide prefix-sum.
    kernel_launch_cycles:
        Fixed front-end cost of launching a kernel.
    """

    alu: float = 1.0
    fma: float = 2.0
    global_load_coalesced: float = 4.0
    global_load_random: float = 24.0
    global_store: float = 4.0
    shared_load: float = 1.0
    shared_store: float = 1.0
    atomic: float = 16.0
    sync: float = 8.0
    loop_overhead: float = 2.0
    range_overhead: float = 1.2
    tile_overhead: float = 10.0
    binary_search_step: float = 6.0
    scan_step: float = 4.0
    kernel_launch_cycles: float = 4000.0


@dataclass(frozen=True)
class GpuLinkSpec:
    """Inter-device interconnect model for multi-GPU ensembles.

    Replaces the flat per-device offload constant with a P2P topology:
    each device's result shard is gathered back to device 0, paying a
    per-hop link latency plus its gather volume over the link bandwidth.
    Two topologies cover the common cases -- ``"all_to_all"`` (NVLink-
    switch-style, every pair one hop) and ``"ring"`` (hops = shortest
    ring distance).  Frozen and hashable, like :class:`GpuSpec` itself,
    so linked specs still work as plan-cache keys.

    Attributes
    ----------
    topology:
        ``"all_to_all"`` or ``"ring"``.
    bandwidth_bytes_per_cycle:
        Sustained P2P link bandwidth in bytes per device-clock cycle
        (NVLink2 ~25 GB/s/direction at 1.38 GHz is ~18 bytes/cycle).
    latency_cycles:
        Fixed per-transfer link latency, charged once per hop.
    """

    topology: str = "all_to_all"
    bandwidth_bytes_per_cycle: float = 18.0
    latency_cycles: float = 700.0

    def __post_init__(self) -> None:
        if self.topology not in ("all_to_all", "ring"):
            raise ValueError(
                f"unknown link topology {self.topology!r}; "
                f"choose 'all_to_all' or 'ring'"
            )
        if self.bandwidth_bytes_per_cycle <= 0:
            raise ValueError("bandwidth_bytes_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    def hops(self, src: int, dst: int, num_devices: int) -> int:
        """Link hops between two devices under this topology."""
        if src == dst:
            return 0
        if self.topology == "all_to_all":
            return 1
        distance = abs(src - dst) % num_devices
        return min(distance, num_devices - distance)


@dataclass(frozen=True)
class GpuSpec:
    """A simulated GPU.

    Attributes mirror the CUDA occupancy vocabulary.  ``warp_size`` is the
    SIMT width; lanes of a warp execute in lockstep, so a warp's loop trip
    count is the *max* over its lanes -- the fundamental mechanism behind
    the load-imbalance problem this paper addresses.
    """

    name: str = "V100"
    num_sms: int = 80
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_resident_warps_per_sm: int = 64
    max_resident_blocks_per_sm: int = 32
    warp_schedulers_per_sm: int = 4
    shared_mem_per_block: int = 48 * 1024  # bytes
    clock_ghz: float = 1.38
    #: Sustained DRAM bandwidth in bytes per core cycle (V100: ~900 GB/s
    #: at 1.38 GHz).  Bandwidth-bound kernels like SpMV cannot finish
    #: faster than total_bytes / this -- the mechanism that makes all
    #: well-balanced schedules converge on large regular inputs.
    dram_bytes_per_cycle: float = 650.0
    costs: CostParams = field(default_factory=CostParams)
    #: Inter-device interconnect for multi-GPU ensembles.  ``None`` keeps
    #: the legacy flat per-device offload overhead (exact parity with
    #: pre-link timing); a :class:`GpuLinkSpec` prices the result gather
    #: over an explicit P2P topology instead.
    link: "GpuLinkSpec | None" = None

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ValueError(f"warp_size must be a positive power of two, got {self.warp_size}")
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.max_threads_per_block % self.warp_size:
            raise ValueError("max_threads_per_block must be a multiple of warp_size")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_resident_threads_per_sm(self) -> int:
        return self.max_resident_warps_per_sm * self.warp_size

    @property
    def max_resident_threads(self) -> int:
        """Device-wide number of concurrently resident threads."""
        return self.max_resident_threads_per_sm * self.num_sms

    def warps_per_block(self, block_dim: int) -> int:
        return -(-block_dim // self.warp_size)

    def resident_blocks_per_sm(self, block_dim: int) -> int:
        """How many blocks of ``block_dim`` threads fit on one SM."""
        if block_dim <= 0:
            raise ValueError("block_dim must be positive")
        if block_dim > self.max_threads_per_block:
            raise ValueError(
                f"block_dim {block_dim} exceeds max_threads_per_block "
                f"{self.max_threads_per_block}"
            )
        by_warps = self.max_resident_warps_per_sm // self.warps_per_block(block_dim)
        return max(1, min(self.max_resident_blocks_per_sm, by_warps))

    def occupancy(self, grid_dim: int, block_dim: int) -> float:
        """Fraction of device-wide resident-thread capacity a launch fills."""
        resident = min(
            grid_dim,
            self.resident_blocks_per_sm(block_dim) * self.num_sms,
        )
        return min(1.0, (resident * block_dim) / self.max_resident_threads)

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / (self.clock_ghz * 1e9) * 1e3

    def ms_to_cycles(self, ms: float) -> float:
        return ms * (self.clock_ghz * 1e9) / 1e3

    def with_costs(self, **updates: float) -> "GpuSpec":
        """Return a copy of this spec with some cost constants replaced."""
        return dataclasses.replace(self, costs=dataclasses.replace(self.costs, **updates))


#: NVIDIA Tesla V100 (Volta), the GPU used in the paper's evaluation.
V100 = GpuSpec()

#: NVIDIA A100 (Ampere) -- more SMs, same warp size.
A100 = GpuSpec(name="A100", num_sms=108, clock_ghz=1.41)

#: An AMD-style architecture with 64-wide wavefronts (HIP ``warpSize == 64``).
#: The group-mapped schedule targets this by changing one compile-time
#: constant (paper, Section 5.2.3).
AMD_WARP64 = GpuSpec(
    name="AMD-WARP64",
    num_sms=60,
    warp_size=64,
    max_resident_warps_per_sm=32,
    clock_ghz=1.50,
)

#: A deliberately tiny GPU used by tests and the SIMT interpreter, so that
#: interpreted launches exercise multi-wave scheduling with few threads.
TINY_GPU = GpuSpec(
    name="TINY",
    num_sms=2,
    warp_size=4,
    max_threads_per_block=64,
    max_resident_warps_per_sm=8,
    max_resident_blocks_per_sm=4,
    warp_schedulers_per_sm=2,
    clock_ghz=1.0,
    dram_bytes_per_cycle=16.0,
)

PRESETS: dict[str, GpuSpec] = {
    "V100": V100,
    "A100": A100,
    "AMD-WARP64": AMD_WARP64,
    "TINY": TINY_GPU,
}


def get_spec(name: str) -> GpuSpec:
    """Look up a preset :class:`GpuSpec` by name (case-insensitive)."""
    key = name.upper()
    if key not in PRESETS:
        raise KeyError(f"unknown GPU preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[key]
