"""Memory access cost modelling.

Global memory on a GPU is accessed in *transactions* (32-byte sectors on
Volta).  When the lanes of a warp access consecutive addresses, the hardware
coalesces the warp's 32 requests into a handful of transactions; when lanes
gather from scattered addresses, each lane may require its own transaction.
Load-balancing schedules differ strongly in their access patterns -- e.g. a
warp-mapped schedule reads a row's nonzeros with stride 1 across lanes
(coalesced) while a thread-mapped schedule makes each lane walk its own row
(uncoalesced across lanes) -- so the coalescing model is a first-order input
to the timing comparisons.
"""

from __future__ import annotations

import numpy as np

from .arch import GpuSpec

#: Bytes per memory transaction (sector).
TRANSACTION_BYTES = 32


def transactions_per_warp_access(
    stride_elems: int, elem_bytes: int, warp_size: int
) -> int:
    """Number of memory transactions for one warp-wide access.

    Parameters
    ----------
    stride_elems:
        Distance in elements between consecutive lanes' addresses.  Stride 1
        is the fully coalesced pattern; stride 0 is a broadcast; large or
        irregular strides degenerate to one transaction per lane.
    elem_bytes:
        Size of each element in bytes.
    warp_size:
        Number of lanes in the warp.
    """
    if stride_elems < 0:
        raise ValueError("stride must be non-negative")
    if elem_bytes <= 0:
        raise ValueError("elem_bytes must be positive")
    if stride_elems == 0:
        return 1  # broadcast: one sector serves every lane
    span_bytes = stride_elems * elem_bytes * (warp_size - 1) + elem_bytes
    touched = -(-span_bytes // TRANSACTION_BYTES)
    return int(min(touched, warp_size))


def coalescing_factor(stride_elems: int, elem_bytes: int, warp_size: int) -> float:
    """Ratio of actual transactions to the ideal (fully coalesced) count.

    1.0 means perfectly coalesced; ``warp_size / ideal`` is the worst case.
    """
    ideal = transactions_per_warp_access(1, elem_bytes, warp_size)
    actual = transactions_per_warp_access(stride_elems, elem_bytes, warp_size)
    return actual / ideal


def warp_load_cost(
    spec: GpuSpec,
    n_accesses: float,
    *,
    stride_elems: int = 1,
    elem_bytes: int = 4,
) -> float:
    """Cycle cost for ``n_accesses`` warp-wide global loads with a pattern.

    The cost interpolates between the coalesced and random-load constants of
    the spec according to the coalescing factor of the access pattern.
    """
    c = spec.costs
    f = coalescing_factor(stride_elems, elem_bytes, spec.warp_size)
    worst = transactions_per_warp_access(0, elem_bytes, spec.warp_size) * spec.warp_size
    # Normalize the factor into [0, 1]: 1 transaction/warp -> 0, one
    # transaction per lane -> 1.
    per_lane = transactions_per_warp_access(stride_elems, elem_bytes, spec.warp_size)
    frac = (per_lane - 1) / max(1, spec.warp_size - 1)
    del worst
    cost_each = c.global_load_coalesced + frac * (
        c.global_load_random - c.global_load_coalesced
    )
    return float(n_accesses) * cost_each


def shared_bank_conflicts(indices: np.ndarray, num_banks: int = 32) -> int:
    """Maximum number of lanes hitting the same shared-memory bank.

    A conflict-free warp access returns 1; an ``n``-way conflict serializes
    into ``n`` shared-memory cycles.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return 1
    banks = idx % num_banks
    _, counts = np.unique(banks, return_counts=True)
    return int(counts.max())


class SharedMemory:
    """A per-block scratchpad used by the SIMT interpreter.

    Named allocation mirrors CUDA's ``__shared__`` declarations: every
    thread in a block asking for the same name receives the same backing
    array.  The total footprint is checked against the spec's limit.
    """

    def __init__(self, spec: GpuSpec):
        self._spec = spec
        self._arrays: dict[str, np.ndarray] = {}
        self._bytes = 0

    def alloc(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        if name in self._arrays:
            return self._arrays[name]
        arr = np.zeros(shape, dtype=dtype)
        self._bytes += arr.nbytes
        if self._bytes > self._spec.shared_mem_per_block:
            raise MemoryError(
                f"shared memory request of {self._bytes} bytes exceeds the "
                f"per-block limit of {self._spec.shared_mem_per_block}"
            )
        self._arrays[name] = arr
        return arr

    @property
    def bytes_allocated(self) -> int:
        return self._bytes

    def reset(self) -> None:
        self._arrays.clear()
        self._bytes = 0
