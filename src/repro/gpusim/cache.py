"""A locality model for gathered operands (the paper's future work).

Section 8: "we also identify locality to be another key factor for high
performance.  We are interested in identifying an orthogonal model that
builds an abstraction for caching and locality into our existing
load-balancing framework."

This module supplies that orthogonal model for the dominant locality
effect in the reproduced workloads: the gathered operand of SpMV-like
kernels (``x[indices[nz]]``).  When the gathered vector fits in the L2
cache, "random" gathers are mostly hits and cost close to a coalesced
load; when the working set exceeds L2, gathers degrade toward DRAM
latency.  The model estimates a hit rate from the working-set-to-cache
ratio with a smooth transition, and exposes an *effective* gather cost
that applications can feed into their :class:`WorkCosts` instead of the
flat pessimistic constant.

The model is deliberately orthogonal: it changes only the per-atom cost,
never the assignment -- schedules remain locality-agnostic, exactly the
separation the paper advocates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arch import GpuSpec

__all__ = ["CacheModel", "L2_V100_BYTES", "gather_hit_rate", "effective_gather_cost"]

#: V100 L2 capacity.
L2_V100_BYTES = 6 * 1024 * 1024


@dataclass(frozen=True)
class CacheModel:
    """An L2-style cache with a capacity and hit/miss gather costs."""

    capacity_bytes: int = L2_V100_BYTES
    #: Cost of a gather that hits in cache (near a coalesced load).
    hit_cycles: float = 6.0
    #: Cost of a gather that misses to DRAM.
    miss_cycles: float = 24.0

    def hit_rate(self, working_set_bytes: float) -> float:
        return gather_hit_rate(working_set_bytes, self.capacity_bytes)

    def gather_cycles(self, working_set_bytes: float) -> float:
        """Expected per-gather cost for a uniformly accessed working set."""
        h = self.hit_rate(working_set_bytes)
        return h * self.hit_cycles + (1.0 - h) * self.miss_cycles


def gather_hit_rate(working_set_bytes: float, capacity_bytes: float) -> float:
    """Expected hit rate for uniform random gathers into a working set.

    A working set within capacity is fully resident (hit rate ~1); beyond
    capacity, a uniform-access LRU cache holds ``capacity / working_set``
    of the lines, which is also the hit probability of the next gather.
    """
    if working_set_bytes < 0 or capacity_bytes <= 0:
        raise ValueError("sizes must be positive")
    if working_set_bytes <= capacity_bytes:
        return 1.0
    return capacity_bytes / working_set_bytes


def effective_gather_cost(
    spec: GpuSpec, working_set_bytes: float, cache: CacheModel | None = None
) -> float:
    """Per-gather cycle cost under the locality model.

    Defaults the hit/miss extremes to the spec's coalesced/random load
    constants, so a cache-oblivious caller gets back exactly the old
    pessimistic behaviour in the limit of huge working sets.
    """
    model = cache or CacheModel(
        hit_cycles=spec.costs.global_load_coalesced * 1.5,
        miss_cycles=spec.costs.global_load_random,
    )
    return model.gather_cycles(working_set_bytes)
