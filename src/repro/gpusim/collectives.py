"""Warp-, block- and group-level collective primitives.

These are the parallel building blocks the paper's group-mapped schedule
relies on (Section 5.2.3): a group stages its tiles' atom counts into
scratchpad memory, runs a *prefix sum* over them, and then binary-searches
that prefix array to map atoms back to tiles.

Two views are provided for each collective:

* a **functional** implementation operating on a NumPy array that holds one
  value per lane (used by the SIMT interpreter and by the vectorized
  executors), and
* a **cost** function returning the cycle count the analytic timing model
  charges for the collective (a Blelloch-style tree of ``log2(n)`` steps).
"""

from __future__ import annotations

import math

import numpy as np

from .arch import GpuSpec

__all__ = [
    "inclusive_scan",
    "exclusive_scan",
    "reduce",
    "ballot",
    "shfl_up",
    "shfl_down",
    "scan_cost",
    "reduce_cost",
]


# ----------------------------------------------------------------------
# Functional collectives
# ----------------------------------------------------------------------
def inclusive_scan(values: np.ndarray, op: str = "add") -> np.ndarray:
    """Inclusive prefix scan across the lanes of a group."""
    v = np.asarray(values)
    if op == "add":
        return np.cumsum(v)
    if op == "max":
        return np.maximum.accumulate(v)
    if op == "min":
        return np.minimum.accumulate(v)
    raise ValueError(f"unsupported scan op {op!r}")


def exclusive_scan(values: np.ndarray, op: str = "add", identity=0) -> np.ndarray:
    """Exclusive prefix scan: element ``i`` holds the reduction of lanes < i."""
    inc = inclusive_scan(values, op)
    out = np.empty_like(inc)
    out[0] = identity
    out[1:] = inc[:-1]
    return out


def reduce(values: np.ndarray, op: str = "add"):
    """Group-wide reduction; every lane observes the same result."""
    v = np.asarray(values)
    if v.size == 0:
        if op == "add":
            return 0
        raise ValueError("cannot reduce an empty group with a non-add op")
    if op == "add":
        return v.sum()
    if op == "max":
        return v.max()
    if op == "min":
        return v.min()
    raise ValueError(f"unsupported reduce op {op!r}")


def ballot(predicate: np.ndarray) -> int:
    """Return a bitmask of lanes whose predicate is true (CUDA ``__ballot``)."""
    bits = np.asarray(predicate).astype(bool)
    mask = 0
    for lane, bit in enumerate(bits):
        if bit:
            mask |= 1 << lane
    return mask


def shfl_up(values: np.ndarray, delta: int, fill=0) -> np.ndarray:
    """Shift lane values up by ``delta`` (lane i reads lane i-delta)."""
    v = np.asarray(values)
    if delta < 0:
        raise ValueError("delta must be non-negative")
    out = np.full_like(v, fill)
    if delta < v.size:
        out[delta:] = v[: v.size - delta]
    return out


def shfl_down(values: np.ndarray, delta: int, fill=0) -> np.ndarray:
    """Shift lane values down by ``delta`` (lane i reads lane i+delta)."""
    v = np.asarray(values)
    if delta < 0:
        raise ValueError("delta must be non-negative")
    out = np.full_like(v, fill)
    if delta < v.size:
        out[: v.size - delta] = v[delta:]
    return out


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def scan_cost(spec: GpuSpec, group_size: int, n_items: int | None = None) -> float:
    """Cycles charged for a group-wide prefix sum.

    A work-efficient scan over ``n_items`` staged values by a group of
    ``group_size`` lanes: ``ceil(n/g)`` passes of a ``log2``-step tree, each
    step one shared-memory read+write plus an add.
    """
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    n = group_size if n_items is None else max(1, n_items)
    c = spec.costs
    steps = max(1, math.ceil(math.log2(max(2, group_size))))
    passes = -(-n // group_size)
    per_step = c.shared_load + c.shared_store + c.alu + c.scan_step
    return passes * (steps * per_step + c.sync)


def reduce_cost(spec: GpuSpec, group_size: int) -> float:
    """Cycles charged for a group-wide tree reduction."""
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    c = spec.costs
    steps = max(1, math.ceil(math.log2(max(2, group_size))))
    return steps * (c.shared_load + c.alu + c.scan_step)
