"""Oversubscribed block scheduling onto streaming multiprocessors.

CUDA's execution model assigns thread blocks to SMs as residency slots free
up: the programmer launches far more blocks than the device can hold
(*oversubscription*), and the hardware work-distributor keeps every SM busy
as long as blocks remain.  Warp- and block-mapped load balancing (paper,
Section 5.2.2) explicitly lean on this mechanism: imbalance across blocks
is "left for the hardware scheduler to handle".

This module reproduces that mechanism with greedy list scheduling: each SM
offers ``resident_blocks_per_sm`` slots, each slot serially executes blocks,
and arriving blocks go to the earliest-available slot.  The makespan (the
finish time of the last block) is the kernel's execution time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .arch import GpuSpec

__all__ = ["ScheduleOutcome", "schedule_blocks", "block_cycles_from_warps"]


@dataclass(frozen=True)
class ScheduleOutcome:
    """Result of scheduling a launch's blocks onto the device."""

    makespan_cycles: float
    total_block_cycles: float
    num_blocks: int
    num_slots: int
    #: Mean utilization of the device while the kernel ran:
    #: total work / (slots * makespan).
    utilization: float
    #: Tail fraction: share of the makespan during which fewer than half of
    #: the slots were busy (a long tail indicates imbalance across blocks).
    tail_fraction: float


def block_cycles_from_warps(warp_cycles: np.ndarray, spec: GpuSpec) -> np.ndarray:
    """Fold per-warp cycle counts into per-block execution times.

    Within a block, warps run concurrently on the SM's warp schedulers.  A
    block is limited both by its longest warp (critical path) and by issue
    bandwidth (``sum / warp_schedulers``); we take the max of the two.

    Parameters
    ----------
    warp_cycles:
        Array of shape ``(num_blocks, warps_per_block)``.
    """
    wc = np.asarray(warp_cycles, dtype=np.float64)
    if wc.ndim == 1:
        wc = wc[:, None]
    critical = wc.max(axis=1)
    bandwidth = wc.sum(axis=1) / spec.warp_schedulers_per_sm
    return np.maximum(critical, bandwidth)


def schedule_blocks(
    block_cycles: np.ndarray, block_dim: int, spec: GpuSpec
) -> ScheduleOutcome:
    """Greedy list scheduling of blocks onto SM residency slots.

    Blocks are dispatched in launch order to the earliest-available slot,
    matching the hardware's behaviour of backfilling SMs as resident blocks
    retire.
    """
    cycles = np.asarray(block_cycles, dtype=np.float64)
    if cycles.ndim != 1:
        raise ValueError("block_cycles must be one-dimensional")
    n_blocks = cycles.size
    if n_blocks == 0:
        return ScheduleOutcome(0.0, 0.0, 0, 0, 1.0, 0.0)
    if np.any(cycles < 0):
        raise ValueError("block cycle counts must be non-negative")

    slots_per_sm = spec.resident_blocks_per_sm(block_dim)
    num_slots = slots_per_sm * spec.num_sms
    total = float(cycles.sum())

    if n_blocks <= num_slots:
        makespan = float(cycles.max())
        finish_times = cycles
    elif _is_uniform(cycles):
        # Fast path: equal blocks pack into ceil(n/slots) full waves.
        waves = -(-n_blocks // num_slots)
        makespan = float(cycles[0]) * waves
        finish_times = None
    else:
        makespan, finish_times = _list_schedule(cycles, num_slots)

    utilization = total / (num_slots * makespan) if makespan > 0 else 1.0
    tail = _tail_fraction(cycles, num_slots, makespan, finish_times)
    return ScheduleOutcome(
        makespan_cycles=makespan,
        total_block_cycles=total,
        num_blocks=n_blocks,
        num_slots=num_slots,
        utilization=min(1.0, utilization),
        tail_fraction=tail,
    )


def _is_uniform(cycles: np.ndarray) -> bool:
    return bool(cycles.size and np.all(cycles == cycles[0]))


def _list_schedule(cycles: np.ndarray, num_slots: int) -> tuple[float, np.ndarray]:
    """Event-driven greedy scheduling; returns makespan and finish times."""
    heap = [0.0] * num_slots
    heapq.heapify(heap)
    finish = np.empty_like(cycles)
    for i, c in enumerate(cycles):
        start = heapq.heappop(heap)
        end = start + c
        finish[i] = end
        heapq.heappush(heap, end)
    return float(max(heap)), finish


def _tail_fraction(
    cycles: np.ndarray,
    num_slots: int,
    makespan: float,
    finish_times: np.ndarray | None,
) -> float:
    """Fraction of the makespan with fewer than half the slots busy."""
    if makespan <= 0 or finish_times is None:
        return 0.0
    # Approximate: after the time by which half the total work area could
    # have completed at full occupancy, measure remaining span.
    order = np.sort(finish_times)
    busy_half_idx = max(0, order.size - num_slots // 2 - 1)
    t_half_idle = order[busy_half_idx] if order.size else makespan
    return float(max(0.0, makespan - t_half_idle) / makespan)
