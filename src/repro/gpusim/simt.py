"""A functional SIMT interpreter.

This module executes Python "kernels" with CUDA-like semantics: a grid of
blocks, blocks of threads, warps of ``spec.warp_size`` lanes executing in
lockstep, per-block shared memory, block-wide barriers and global atomics.

It serves two purposes in the reproduction:

1. **Correctness ground truth** -- schedules and applications are executed
   thread-by-thread exactly as the paper's CUDA kernels would run, and the
   results are compared against the fast vectorized executors.
2. **Timing agreement** -- kernels *charge* cycle costs through
   :meth:`ThreadCtx.charge`; the per-thread charges are folded into warp,
   block and device times by the same cost model the analytic planners use,
   so the two paths can be cross-validated on small inputs.

Kernels are plain Python functions ``kernel(ctx, *args)``.  A kernel that
needs ``__syncthreads__`` must be written as a *generator* and
``yield ctx.sync()`` at each barrier; the interpreter suspends every thread
of the block at the barrier before resuming any of them, faithfully
reproducing barrier semantics (including deadlock detection when a barrier
is not reached by all threads).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from .arch import GpuSpec, TINY_GPU
from .memory import SharedMemory
from .sm_scheduler import block_cycles_from_warps, schedule_blocks

__all__ = ["ThreadCtx", "LaunchResult", "launch_interpreted", "SimtError"]

_SYNC = object()


class SimtError(RuntimeError):
    """Raised for SIMT-semantics violations (e.g. divergent barriers)."""


@dataclass
class _BlockState:
    shared: SharedMemory
    arrived: int = 0


class ThreadCtx:
    """Per-thread execution context handed to interpreted kernels.

    Mirrors the CUDA built-ins (``threadIdx``/``blockIdx``/``blockDim``/
    ``gridDim``) plus the simulator-specific :meth:`charge` hook used for
    timing attribution.
    """

    __slots__ = (
        "thread_idx",
        "block_idx",
        "block_dim",
        "grid_dim",
        "spec",
        "cycles",
        "_block",
    )

    def __init__(
        self,
        thread_idx: int,
        block_idx: int,
        block_dim: int,
        grid_dim: int,
        spec: GpuSpec,
        block: _BlockState,
    ):
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.spec = spec
        self.cycles = 0.0
        self._block = block

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def global_thread_id(self) -> int:
        return self.block_idx * self.block_dim + self.thread_idx

    @property
    def num_threads(self) -> int:
        return self.block_dim * self.grid_dim

    @property
    def warp_size(self) -> int:
        return self.spec.warp_size

    @property
    def lane_id(self) -> int:
        return self.thread_idx % self.spec.warp_size

    @property
    def warp_id(self) -> int:
        """Warp index within the block."""
        return self.thread_idx // self.spec.warp_size

    @property
    def global_warp_id(self) -> int:
        return self.global_thread_id // self.spec.warp_size

    # ------------------------------------------------------------------
    # Timing attribution
    # ------------------------------------------------------------------
    def charge(self, cycles: float) -> None:
        """Attribute ``cycles`` of work to this thread."""
        self.cycles += cycles

    # ------------------------------------------------------------------
    # Shared memory and synchronization
    # ------------------------------------------------------------------
    def shared(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        """Named per-block scratchpad allocation (CUDA ``__shared__``)."""
        return self._block.shared.alloc(name, shape, dtype)

    def sync(self):
        """Barrier token: generator kernels must ``yield ctx.sync()``."""
        self.charge(self.spec.costs.sync)
        return _SYNC

    # ------------------------------------------------------------------
    # Atomics.  The interpreter runs threads one step at a time, so plain
    # read-modify-write is a valid linearization of the concurrent atomics.
    # ------------------------------------------------------------------
    def atomic_add(self, array: np.ndarray, index, value):
        self.charge(self.spec.costs.atomic)
        old = array[index]
        array[index] = old + value
        return old

    def atomic_min(self, array: np.ndarray, index, value):
        self.charge(self.spec.costs.atomic)
        old = array[index]
        if value < old:
            array[index] = value
        return old

    def atomic_max(self, array: np.ndarray, index, value):
        self.charge(self.spec.costs.atomic)
        old = array[index]
        if value > old:
            array[index] = value
        return old

    def atomic_cas(self, array: np.ndarray, index, compare, value):
        self.charge(self.spec.costs.atomic)
        old = array[index]
        if old == compare:
            array[index] = value
        return old


@dataclass
class LaunchResult:
    """Outcome of an interpreted kernel launch."""

    grid_dim: int
    block_dim: int
    spec: GpuSpec
    thread_cycles: np.ndarray  # (grid_dim * block_dim,)
    warp_cycles: np.ndarray
    block_cycles: np.ndarray
    makespan_cycles: float
    elapsed_ms: float
    occupancy: float
    extras: dict = field(default_factory=dict)

    @property
    def simt_efficiency(self) -> float:
        """Fraction of lockstep lane-cycles doing useful work.

        1.0 means no divergence-induced idling; low values indicate heavy
        load imbalance within warps.
        """
        total_useful = float(self.thread_cycles.sum())
        total_issued = float(self.warp_cycles.sum()) * self.spec.warp_size
        if total_issued == 0:
            return 1.0
        return total_useful / total_issued


def _fold_thread_cycles(
    thread_cycles: np.ndarray, grid_dim: int, block_dim: int, spec: GpuSpec
) -> tuple[np.ndarray, np.ndarray]:
    """Fold per-thread cycles into per-warp (lockstep max) and per-block."""
    warp_size = spec.warp_size
    warps_per_block = -(-block_dim // warp_size)
    padded = np.zeros(grid_dim * warps_per_block * warp_size)
    # Threads of block b occupy slots [b*wpb*ws, b*wpb*ws + block_dim).
    tc = thread_cycles.reshape(grid_dim, block_dim)
    padded = padded.reshape(grid_dim, warps_per_block * warp_size)
    padded[:, :block_dim] = tc
    warp_cycles = padded.reshape(grid_dim, warps_per_block, warp_size).max(axis=2)
    block_cycles = block_cycles_from_warps(warp_cycles, spec)
    return warp_cycles.reshape(-1), block_cycles


def launch_interpreted(
    kernel: Callable[..., Any],
    grid_dim: int,
    block_dim: int,
    args: Sequence[Any] = (),
    spec: GpuSpec = TINY_GPU,
) -> LaunchResult:
    """Execute ``kernel`` over a ``grid_dim x block_dim`` launch.

    Generator kernels get true barrier semantics; plain functions are run
    to completion one thread at a time (valid when the kernel contains no
    block-wide synchronization, which is the common case for user kernels
    in this framework -- schedules that need barriers use generators
    internally).
    """
    if grid_dim <= 0 or block_dim <= 0:
        raise ValueError("grid_dim and block_dim must be positive")
    if block_dim > spec.max_threads_per_block:
        raise ValueError(
            f"block_dim {block_dim} exceeds {spec.name} limit "
            f"{spec.max_threads_per_block}"
        )

    is_generator = inspect.isgeneratorfunction(kernel)
    thread_cycles = np.zeros(grid_dim * block_dim)

    for block_idx in range(grid_dim):
        block = _BlockState(shared=SharedMemory(spec))
        ctxs = [
            ThreadCtx(t, block_idx, block_dim, grid_dim, spec, block)
            for t in range(block_dim)
        ]
        if is_generator:
            _run_block_with_barriers(kernel, ctxs, args, block_idx)
        else:
            for ctx in ctxs:
                kernel(ctx, *args)
        for ctx in ctxs:
            thread_cycles[ctx.global_thread_id] = ctx.cycles

    warp_cycles, block_cycles = _fold_thread_cycles(
        thread_cycles, grid_dim, block_dim, spec
    )
    sched = schedule_blocks(block_cycles, block_dim, spec)
    makespan = sched.makespan_cycles + spec.costs.kernel_launch_cycles
    return LaunchResult(
        grid_dim=grid_dim,
        block_dim=block_dim,
        spec=spec,
        thread_cycles=thread_cycles,
        warp_cycles=warp_cycles,
        block_cycles=block_cycles,
        makespan_cycles=makespan,
        elapsed_ms=spec.cycles_to_ms(makespan),
        occupancy=spec.occupancy(grid_dim, block_dim),
    )


def _run_block_with_barriers(kernel, ctxs, args, block_idx: int) -> None:
    """Advance every thread generator of a block barrier-to-barrier."""
    gens = [kernel(ctx, *args) for ctx in ctxs]
    alive = list(range(len(gens)))
    while alive:
        at_barrier: list[int] = []
        done: list[int] = []
        for t in alive:
            try:
                token = next(gens[t])
            except StopIteration:
                done.append(t)
                continue
            if token is not _SYNC:
                raise SimtError(
                    f"thread {t} of block {block_idx} yielded a non-barrier "
                    f"token {token!r}; kernels may only yield ctx.sync()"
                )
            at_barrier.append(t)
        if at_barrier and done:
            raise SimtError(
                f"divergent barrier in block {block_idx}: threads "
                f"{at_barrier[:4]}... reached __syncthreads__ while threads "
                f"{done[:4]}... exited"
            )
        alive = at_barrier
