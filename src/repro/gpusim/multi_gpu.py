"""Multi-GPU extension (the paper's future work, Section 8).

"In the future, we are interested in expanding our model to a multi-GPU
environment, and implementing load-balancing schedules that span across
the GPU boundary."

This module does exactly that, one level up the same abstraction: the
*devices* become the processors, and the tile set is split across them
with the same machinery used inside a device.  Two inter-device
partitioners are provided:

* ``"tiles"`` -- equal tile counts per device (the naive split, fragile
  under skew, analogous to thread-mapped);
* ``"merge_path"`` -- equal tiles+atoms per device via the same 2-D
  binary search the merge-path schedule uses (balanced under any skew),
  demonstrating that the paper's schedules really do "span across the
  GPU boundary" unchanged.

Each device then runs its intra-device schedule on its shard; the
ensemble time is the slowest device plus the inter-device transfer
cost.  With no :class:`~repro.gpusim.arch.GpuLinkSpec` on the spec the
transfer term is the legacy flat per-device offload overhead (host
dispatch + result gather); with a link it is priced per device as hops
x (link latency + gather volume / link bandwidth) back to device 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .arch import GpuSpec
from .cost_model import KernelStats

__all__ = [
    "MultiGpuStats",
    "partition_tiles",
    "multi_gpu_plan",
    "transfer_overhead_cycles",
]

#: Host-side cost of dispatching to / gathering from one extra device,
#: in cycles of the (homogeneous) device clock.  Used when the spec has
#: no link topology (the legacy flat model).
PER_DEVICE_OVERHEAD_CYCLES = 2500.0

#: Result-gather volume per tile: each tile contributes one 8-byte
#: output element that must travel back to device 0 under a link model.
GATHER_BYTES_PER_TILE = 8.0


def transfer_overhead_cycles(
    spec: GpuSpec, shards, num_devices: int
) -> tuple[float, float]:
    """Inter-device transfer cost of gathering results to device 0.

    Returns ``(cycles, gather_bytes)``.  With no link on the spec this
    is the flat legacy term (``PER_DEVICE_OVERHEAD_CYCLES`` per device,
    volume-blind); with a :class:`~repro.gpusim.arch.GpuLinkSpec` each
    non-root device pays ``hops * (latency + volume / bandwidth)`` where
    volume is its shard's tile count times :data:`GATHER_BYTES_PER_TILE`
    -- device 0's shard never crosses a link.
    """
    link = spec.link
    if link is None:
        return PER_DEVICE_OVERHEAD_CYCLES * num_devices, 0.0
    cycles = 0.0
    gather_bytes = 0.0
    for device, (_atoms, tiles) in enumerate(shards):
        hops = link.hops(device, 0, num_devices)
        if hops == 0:
            continue
        volume = float(tiles) * GATHER_BYTES_PER_TILE
        gather_bytes += volume
        cycles += hops * (
            link.latency_cycles + volume / link.bandwidth_bytes_per_cycle
        )
    return cycles, gather_bytes


@dataclass(frozen=True)
class MultiGpuStats:
    """Ensemble timing of a multi-device launch."""

    elapsed_ms: float
    num_devices: int
    #: Per-device kernel stats, in device order.
    device_stats: tuple[KernelStats, ...]
    #: (atoms, tiles) per device -- the shard sizes.
    shards: tuple[tuple[int, int], ...]
    #: max device time / mean device time (1.0 = perfectly balanced).
    device_imbalance: float
    extras: dict = field(default_factory=dict, compare=False)

    @property
    def speedup_vs_slowest_possible(self) -> float:
        total = sum(s.elapsed_ms for s in self.device_stats)
        return total / self.elapsed_ms if self.elapsed_ms > 0 else 1.0


def partition_tiles(
    tile_offsets: np.ndarray, num_devices: int, strategy: str = "merge_path"
) -> np.ndarray:
    """Split the tile range into ``num_devices`` contiguous shards.

    Returns device boundaries in tile ids (length ``num_devices + 1``).
    """
    offsets = np.asarray(tile_offsets, dtype=np.int64)
    num_tiles = offsets.size - 1
    num_atoms = int(offsets[-1])
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if strategy == "tiles":
        bounds = np.linspace(0, num_tiles, num_devices + 1).astype(np.int64)
        return bounds
    if strategy == "merge_path":
        from ..core.schedules.merge_path import merge_path_partition

        total = num_tiles + num_atoms
        diagonals = np.linspace(0, total, num_devices + 1).astype(np.int64)
        tile_bounds, _ = merge_path_partition(offsets, num_atoms, diagonals)
        tile_bounds = tile_bounds.copy()
        tile_bounds[0], tile_bounds[-1] = 0, num_tiles
        return tile_bounds
    raise ValueError(f"unknown partition strategy {strategy!r}")


def multi_gpu_plan(
    work,
    costs,
    *,
    schedule: str = "merge_path",
    spec: GpuSpec | None = None,
    num_devices: int = 2,
    partition: str = "merge_path",
    plan_shard=None,
    **schedule_options,
) -> MultiGpuStats:
    """Plan a workload across ``num_devices`` homogeneous GPUs.

    ``work`` is a :class:`~repro.core.work.WorkSpec`; each shard becomes
    its own WorkSpec scheduled independently with ``schedule``.

    ``plan_shard(sched, costs, extras) -> KernelStats`` overrides how one
    shard's schedule is priced (default: ``sched.plan``); the engine
    layer uses it to route shard planning through its plan cache without
    duplicating this loop.
    """
    from ..core.schedule import make_schedule
    from ..core.work import WorkSpec
    from .arch import V100

    spec = spec or V100
    bounds = partition_tiles(work.tile_offsets, num_devices, partition)
    device_stats: list[KernelStats] = []
    shards: list[tuple[int, int]] = []
    for d in range(num_devices):
        lo, hi = int(bounds[d]), int(bounds[d + 1])
        shard_offsets = work.tile_offsets[lo : hi + 1] - work.tile_offsets[lo]
        shard = WorkSpec.from_offsets(shard_offsets, label=f"{work.label}/dev{d}")
        shards.append((shard.num_atoms, shard.num_tiles))
        if shard.num_tiles == 0 and shard.num_atoms == 0:
            continue
        sched = make_schedule(schedule, shard, spec, **schedule_options)
        extras = {"device": d}
        device_stats.append(
            plan_shard(sched, costs, extras) if plan_shard is not None
            else sched.plan(costs, extras=extras)
        )

    if not device_stats:
        raise ValueError("empty workload: nothing to plan")
    times = np.array([s.elapsed_ms for s in device_stats])
    if spec.link is None:
        # Bit-exact legacy expression: zero-topology specs must
        # reproduce pre-link ensemble timing to the last ulp.
        overhead_ms = spec.cycles_to_ms(PER_DEVICE_OVERHEAD_CYCLES) * num_devices
        gather_bytes = 0.0
        transfer_model = "flat"
    else:
        cycles, gather_bytes = transfer_overhead_cycles(
            spec, shards, num_devices
        )
        overhead_ms = spec.cycles_to_ms(cycles)
        transfer_model = spec.link.topology
    elapsed = float(times.max()) + overhead_ms
    return MultiGpuStats(
        elapsed_ms=elapsed,
        num_devices=num_devices,
        device_stats=tuple(device_stats),
        shards=tuple(shards),
        device_imbalance=float(times.max() / times.mean()),
        extras={
            "partition": partition,
            "schedule": schedule,
            "transfer_model": transfer_model,
            "transfer_ms": overhead_ms,
            "gather_bytes": gather_bytes,
        },
    )
