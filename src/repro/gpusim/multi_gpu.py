"""Multi-GPU extension (the paper's future work, Section 8).

"In the future, we are interested in expanding our model to a multi-GPU
environment, and implementing load-balancing schedules that span across
the GPU boundary."

This module does exactly that, one level up the same abstraction: the
*devices* become the processors, and the tile set is split across them
with the same machinery used inside a device.  Two inter-device
partitioners are provided:

* ``"tiles"`` -- equal tile counts per device (the naive split, fragile
  under skew, analogous to thread-mapped);
* ``"merge_path"`` -- equal tiles+atoms per device via the same 2-D
  binary search the merge-path schedule uses (balanced under any skew),
  demonstrating that the paper's schedules really do "span across the
  GPU boundary" unchanged.

Each device then runs its intra-device schedule on its shard; the
ensemble time is the slowest device plus a per-device offload overhead
(host dispatch + result gather).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .arch import GpuSpec
from .cost_model import KernelStats

__all__ = ["MultiGpuStats", "partition_tiles", "multi_gpu_plan"]

#: Host-side cost of dispatching to / gathering from one extra device,
#: in cycles of the (homogeneous) device clock.
PER_DEVICE_OVERHEAD_CYCLES = 2500.0


@dataclass(frozen=True)
class MultiGpuStats:
    """Ensemble timing of a multi-device launch."""

    elapsed_ms: float
    num_devices: int
    #: Per-device kernel stats, in device order.
    device_stats: tuple[KernelStats, ...]
    #: (atoms, tiles) per device -- the shard sizes.
    shards: tuple[tuple[int, int], ...]
    #: max device time / mean device time (1.0 = perfectly balanced).
    device_imbalance: float
    extras: dict = field(default_factory=dict, compare=False)

    @property
    def speedup_vs_slowest_possible(self) -> float:
        total = sum(s.elapsed_ms for s in self.device_stats)
        return total / self.elapsed_ms if self.elapsed_ms > 0 else 1.0


def partition_tiles(
    tile_offsets: np.ndarray, num_devices: int, strategy: str = "merge_path"
) -> np.ndarray:
    """Split the tile range into ``num_devices`` contiguous shards.

    Returns device boundaries in tile ids (length ``num_devices + 1``).
    """
    offsets = np.asarray(tile_offsets, dtype=np.int64)
    num_tiles = offsets.size - 1
    num_atoms = int(offsets[-1])
    if num_devices <= 0:
        raise ValueError("num_devices must be positive")
    if strategy == "tiles":
        bounds = np.linspace(0, num_tiles, num_devices + 1).astype(np.int64)
        return bounds
    if strategy == "merge_path":
        from ..core.schedules.merge_path import merge_path_partition

        total = num_tiles + num_atoms
        diagonals = np.linspace(0, total, num_devices + 1).astype(np.int64)
        tile_bounds, _ = merge_path_partition(offsets, num_atoms, diagonals)
        tile_bounds = tile_bounds.copy()
        tile_bounds[0], tile_bounds[-1] = 0, num_tiles
        return tile_bounds
    raise ValueError(f"unknown partition strategy {strategy!r}")


def multi_gpu_plan(
    work,
    costs,
    *,
    schedule: str = "merge_path",
    spec: GpuSpec | None = None,
    num_devices: int = 2,
    partition: str = "merge_path",
    plan_shard=None,
    **schedule_options,
) -> MultiGpuStats:
    """Plan a workload across ``num_devices`` homogeneous GPUs.

    ``work`` is a :class:`~repro.core.work.WorkSpec`; each shard becomes
    its own WorkSpec scheduled independently with ``schedule``.

    ``plan_shard(sched, costs, extras) -> KernelStats`` overrides how one
    shard's schedule is priced (default: ``sched.plan``); the engine
    layer uses it to route shard planning through its plan cache without
    duplicating this loop.
    """
    from ..core.schedule import make_schedule
    from ..core.work import WorkSpec
    from .arch import V100

    spec = spec or V100
    bounds = partition_tiles(work.tile_offsets, num_devices, partition)
    device_stats: list[KernelStats] = []
    shards: list[tuple[int, int]] = []
    for d in range(num_devices):
        lo, hi = int(bounds[d]), int(bounds[d + 1])
        shard_offsets = work.tile_offsets[lo : hi + 1] - work.tile_offsets[lo]
        shard = WorkSpec.from_offsets(shard_offsets, label=f"{work.label}/dev{d}")
        shards.append((shard.num_atoms, shard.num_tiles))
        if shard.num_tiles == 0 and shard.num_atoms == 0:
            continue
        sched = make_schedule(schedule, shard, spec, **schedule_options)
        extras = {"device": d}
        device_stats.append(
            plan_shard(sched, costs, extras) if plan_shard is not None
            else sched.plan(costs, extras=extras)
        )

    if not device_stats:
        raise ValueError("empty workload: nothing to plan")
    times = np.array([s.elapsed_ms for s in device_stats])
    overhead_ms = spec.cycles_to_ms(PER_DEVICE_OVERHEAD_CYCLES) * num_devices
    elapsed = float(times.max()) + overhead_ms
    return MultiGpuStats(
        elapsed_ms=elapsed,
        num_devices=num_devices,
        device_stats=tuple(device_stats),
        shards=tuple(shards),
        device_imbalance=float(times.max() / times.mean()),
        extras={"partition": partition, "schedule": schedule},
    )
