"""A model of CUDA's Cooperative Groups (CG) programming model.

The paper's novel *group-mapped* schedule (Section 5.2.3) is built on CG:
a thread block is partitioned into programmer-sized groups ("tiled
partitions"), and each group cooperates through group-wide synchronization
and collectives (reduce, scan).  Choosing the group size equal to the warp
or block size recovers the classical warp- and block-mapped schedules "for
free"; choosing 64 targets AMD-style wavefronts with a one-line change.

This module models groups at the *array level*: a group is a contiguous
span of lane slots, and collectives operate on a NumPy vector holding one
value per lane.  The SIMT interpreter uses the same objects, with lanes
contributing their values through shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import collectives
from .arch import GpuSpec

__all__ = ["ThreadGroup", "tiled_partition", "valid_group_size"]


def valid_group_size(group_size: int, block_dim: int) -> bool:
    """CG tiled partitions must evenly divide the parent block."""
    return 0 < group_size <= block_dim and block_dim % group_size == 0


@dataclass(frozen=True)
class ThreadGroup:
    """A cooperative group: ``size`` consecutive lanes of a block.

    ``group_index`` identifies the group within its block; ``block_dim``
    is the parent block size.
    """

    size: int
    group_index: int
    block_dim: int

    def __post_init__(self) -> None:
        if not valid_group_size(self.size, self.block_dim):
            raise ValueError(
                f"group size {self.size} does not tile block of {self.block_dim}"
            )
        if not 0 <= self.group_index < self.block_dim // self.size:
            raise ValueError(f"group_index {self.group_index} out of range")

    # ------------------------------------------------------------------
    # Identity helpers (mirror cg::thread_block_tile)
    # ------------------------------------------------------------------
    @property
    def groups_per_block(self) -> int:
        return self.block_dim // self.size

    def thread_rank(self, thread_idx: int) -> int:
        """Rank of a block-local thread within this group."""
        rank = thread_idx - self.group_index * self.size
        if not 0 <= rank < self.size:
            raise ValueError(
                f"thread {thread_idx} is not a member of group {self.group_index}"
            )
        return rank

    def contains(self, thread_idx: int) -> bool:
        return self.group_index == thread_idx // self.size

    def lane_slice(self) -> slice:
        """Block-local slice of the lanes belonging to this group."""
        lo = self.group_index * self.size
        return slice(lo, lo + self.size)

    # ------------------------------------------------------------------
    # Collectives (array-level: one value per lane)
    # ------------------------------------------------------------------
    def _check(self, values: np.ndarray) -> np.ndarray:
        v = np.asarray(values)
        if v.shape[0] != self.size:
            raise ValueError(
                f"collective input has {v.shape[0]} lanes; group size is {self.size}"
            )
        return v

    def reduce(self, values: np.ndarray, op: str = "add"):
        return collectives.reduce(self._check(values), op)

    def inclusive_scan(self, values: np.ndarray, op: str = "add") -> np.ndarray:
        return collectives.inclusive_scan(self._check(values), op)

    def exclusive_scan(self, values: np.ndarray, op: str = "add", identity=0) -> np.ndarray:
        return collectives.exclusive_scan(self._check(values), op, identity)

    def ballot(self, predicate: np.ndarray) -> int:
        return collectives.ballot(self._check(predicate))

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def sync_cost(self, spec: GpuSpec) -> float:
        """Group sync is cheaper than a block barrier for sub-warp groups."""
        if self.size <= spec.warp_size:
            return spec.costs.alu  # intra-warp: implicit lockstep
        return spec.costs.sync

    def scan_cost(self, spec: GpuSpec, n_items: int | None = None) -> float:
        return collectives.scan_cost(spec, self.size, n_items)

    def reduce_cost(self, spec: GpuSpec) -> float:
        return collectives.reduce_cost(spec, self.size)


def tiled_partition(block_dim: int, group_size: int) -> list[ThreadGroup]:
    """Partition a block into equally sized cooperative groups.

    Mirrors ``cg::tiled_partition<size>(cg::this_thread_block())``.
    """
    if not valid_group_size(group_size, block_dim):
        raise ValueError(
            f"cannot tile a block of {block_dim} threads into groups of {group_size}"
        )
    return [
        ThreadGroup(size=group_size, group_index=g, block_dim=block_dim)
        for g in range(block_dim // group_size)
    ]
