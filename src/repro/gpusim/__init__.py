"""``repro.gpusim`` -- the simulated-GPU substrate.

The paper targets CUDA on a physical V100.  This package substitutes a
simulated device with the same *structure*: lockstep warps, blocks, shared
memory, cooperative groups, atomics, and an oversubscribed block scheduler
over streaming multiprocessors.  Two execution paths are provided:

* :func:`repro.gpusim.simt.launch_interpreted` -- a functional SIMT
  interpreter that steps Python kernels thread-by-thread (ground truth for
  correctness and timing attribution at small scale);
* :mod:`repro.gpusim.cost_model` -- an analytic path that folds vectorized
  per-thread cycle counts into warp/block/device times (used at corpus
  scale).

Both paths share the same folding rules, so they agree by construction.
"""

from .arch import (
    A100,
    AMD_WARP64,
    PRESETS,
    TINY_GPU,
    V100,
    CostParams,
    GpuLinkSpec,
    GpuSpec,
    get_spec,
)
from .cost_model import (
    KernelStats,
    kernel_stats_from_thread_cycles,
    kernel_stats_from_warp_cycles,
    warp_fold,
)
from .cooperative_groups import ThreadGroup, tiled_partition, valid_group_size
from .multi_gpu import (
    MultiGpuStats,
    multi_gpu_plan,
    partition_tiles,
    transfer_overhead_cycles,
)
from .profiler import ProfileLog, geomean
from .simt import LaunchResult, SimtError, ThreadCtx, launch_interpreted
from .sm_scheduler import ScheduleOutcome, block_cycles_from_warps, schedule_blocks

__all__ = [
    "A100",
    "AMD_WARP64",
    "PRESETS",
    "TINY_GPU",
    "V100",
    "CostParams",
    "GpuLinkSpec",
    "GpuSpec",
    "get_spec",
    "KernelStats",
    "kernel_stats_from_thread_cycles",
    "kernel_stats_from_warp_cycles",
    "warp_fold",
    "ThreadGroup",
    "tiled_partition",
    "valid_group_size",
    "MultiGpuStats",
    "multi_gpu_plan",
    "partition_tiles",
    "transfer_overhead_cycles",
    "ProfileLog",
    "geomean",
    "LaunchResult",
    "SimtError",
    "ThreadCtx",
    "launch_interpreted",
    "ScheduleOutcome",
    "block_cycles_from_warps",
    "schedule_blocks",
]
