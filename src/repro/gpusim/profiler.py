"""Kernel profiling: collection and reporting of :class:`KernelStats`.

The evaluation harness records one :class:`~repro.gpusim.cost_model.KernelStats`
per (kernel, dataset) cell; this module aggregates them into the summary
statistics the paper reports (geomean slowdowns/speedups, win fractions)
and renders simple text tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .cost_model import KernelStats

__all__ = ["ProfileLog", "geomean", "summarize"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; ignores non-positive entries (undefined for them)."""
    arr = np.asarray([v for v in values if v > 0], dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty (or non-positive) sequence")
    return float(np.exp(np.log(arr).mean()))


@dataclass
class ProfileRecord:
    kernel: str
    dataset: str
    stats: KernelStats
    meta: dict = field(default_factory=dict)


@dataclass
class ProfileLog:
    """An append-only log of profiled launches with query helpers."""

    records: list[ProfileRecord] = field(default_factory=list)

    def add(self, kernel: str, dataset: str, stats: KernelStats, **meta) -> None:
        self.records.append(ProfileRecord(kernel, dataset, stats, meta))

    def kernels(self) -> list[str]:
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.kernel, None)
        return list(seen)

    def elapsed(self, kernel: str) -> dict[str, float]:
        """dataset -> elapsed_ms for one kernel."""
        return {
            r.dataset: r.stats.elapsed_ms for r in self.records if r.kernel == kernel
        }

    def speedups(self, kernel: str, baseline: str) -> dict[str, float]:
        """Per-dataset speedup of ``kernel`` over ``baseline``."""
        ours = self.elapsed(kernel)
        base = self.elapsed(baseline)
        common = sorted(set(ours) & set(base))
        return {d: base[d] / ours[d] for d in common if ours[d] > 0}

    def geomean_speedup(self, kernel: str, baseline: str) -> float:
        return geomean(self.speedups(kernel, baseline).values())

    def win_fraction(self, kernel: str, baseline: str, threshold: float = 1.0) -> float:
        """Fraction of datasets where ``kernel`` achieves >= threshold x baseline."""
        sp = self.speedups(kernel, baseline)
        if not sp:
            raise ValueError("no common datasets between kernel and baseline")
        wins = sum(1 for v in sp.values() if v >= threshold)
        return wins / len(sp)


def summarize(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Render a list of dict rows as an aligned text table."""
    headers = list(columns)
    rendered = [[_fmt(r.get(c, "")) for c in headers] for r in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
