"""Work definition: atoms, tiles and tile sets (Section 3.1).

A :class:`WorkSpec` is the framework's common vocabulary for irregular
work.  It captures:

* **work atoms** -- the schedulable unit (a nonzero, an edge), all assumed
  equal-cost;
* **work tiles** -- logical groupings of atoms (a row, a vertex's edge
  list) with *unequal* costs;
* the **tile set** -- the whole problem, with independent tiles.

Every sparse format maps onto a WorkSpec through three iterators (atoms,
tiles, atoms-per-tile) plus two counts, exactly the inputs Listing 2's
schedule constructor takes.  Internally the canonical representation is
the ``tile_offsets`` exclusive prefix array (for CSR this *is* the row
offsets array -- zero-cost), from which the iterators are derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sparse.convert import offsets_from_counts
from ..sparse.coo import CooMatrix
from ..sparse.csc import CscMatrix
from ..sparse.csr import CsrMatrix
from .iterators import CountingIterator, TransformIterator

__all__ = ["WorkSpec"]


@dataclass(frozen=True)
class WorkSpec:
    """An irregular workload expressed as atoms / tiles / tile set."""

    tile_offsets: np.ndarray  # (num_tiles + 1,) int64 exclusive prefix sum
    num_atoms: int
    num_tiles: int
    #: Optional descriptive label (dataset name) carried into reports.
    label: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Constructors from sparse formats (the user-defined mapping of
    # Section 3.1; these cover the formats the library ships built-in).
    # ------------------------------------------------------------------
    @staticmethod
    def from_counts(atoms_per_tile, label: str = "") -> "WorkSpec":
        counts = np.asarray(atoms_per_tile, dtype=np.int64)
        if counts.ndim != 1:
            raise ValueError("atoms_per_tile must be one-dimensional")
        if counts.size and counts.min() < 0:
            raise ValueError("atom counts must be non-negative")
        offsets = offsets_from_counts(counts)
        return WorkSpec(
            tile_offsets=offsets,
            num_atoms=int(offsets[-1]),
            num_tiles=int(counts.size),
            label=label,
        )

    @staticmethod
    def from_offsets(tile_offsets, label: str = "") -> "WorkSpec":
        offsets = np.ascontiguousarray(tile_offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("tile_offsets must be a 1-D array of length >= 1")
        if offsets[0] != 0 or np.any(np.diff(offsets) < 0):
            raise ValueError("tile_offsets must start at 0 and be non-decreasing")
        return WorkSpec(
            tile_offsets=offsets,
            num_atoms=int(offsets[-1]),
            num_tiles=int(offsets.size - 1),
            label=label,
        )

    @staticmethod
    def from_iterators(
        atoms_iter,
        tiles_iter,
        atoms_per_tile_iter,
        num_atoms: int,
        num_tiles: int,
        label: str = "",
    ) -> "WorkSpec":
        """The Listing 2 constructor: three iterators plus two counts.

        This is the fully general entry point for *user-defined* formats
        (Section 3.1): any object indexable by tile id works as the
        atoms-per-tile iterator.  The counts are materialized once into
        the canonical offsets array; ``atoms_iter`` and ``tiles_iter``
        define the id spaces and must enumerate ``0..num_atoms`` and
        ``0..num_tiles`` (checked at their endpoints).
        """
        if num_atoms < 0 or num_tiles < 0:
            raise ValueError("counts must be non-negative")
        if num_atoms > 0 and atoms_iter[0] != 0:
            raise ValueError("atoms_iter must enumerate atom ids from 0")
        if num_tiles > 0 and tiles_iter[0] != 0:
            raise ValueError("tiles_iter must enumerate tile ids from 0")
        ids = np.arange(num_tiles, dtype=np.int64)
        try:  # vectorized gather when the iterator supports it
            counts = np.asarray(atoms_per_tile_iter[ids], dtype=np.int64)
        except (TypeError, IndexError, ValueError):
            counts = np.fromiter(
                (atoms_per_tile_iter[int(i)] for i in ids),
                dtype=np.int64,
                count=num_tiles,
            )
        spec = WorkSpec.from_counts(counts, label)
        if spec.num_atoms != num_atoms:
            raise ValueError(
                f"atoms-per-tile iterator sums to {spec.num_atoms}, but "
                f"num_atoms is {num_atoms}"
            )
        return spec

    @staticmethod
    def from_csr(csr: CsrMatrix, label: str = "") -> "WorkSpec":
        """CSR rows are tiles, nonzeros are atoms (Listing 1)."""
        return WorkSpec.from_offsets(csr.row_offsets, label)

    @staticmethod
    def from_csc(csc: CscMatrix, label: str = "") -> "WorkSpec":
        """CSC columns are tiles, nonzeros are atoms."""
        return WorkSpec.from_offsets(csc.col_offsets, label)

    @staticmethod
    def from_coo(coo: CooMatrix, label: str = "") -> "WorkSpec":
        """COO rows are tiles; a row-pointer array is built by counting.

        The triples must be row-sorted so that each tile's atoms are a
        contiguous atom-id range (the invariant all schedules rely on).
        """
        if coo.nnz and np.any(np.diff(coo.rows) < 0):
            raise ValueError("COO input must be sorted by row; use sorted_by_row()")
        counts = np.bincount(coo.rows, minlength=coo.shape[0]).astype(np.int64)
        return WorkSpec.from_counts(counts, label)

    # ------------------------------------------------------------------
    # The three iterators of the paper's input stage
    # ------------------------------------------------------------------
    @property
    def atoms_iter(self) -> CountingIterator:
        """Iterator over all work atoms (``counting_iterator(0, nnz)``)."""
        return CountingIterator(0)

    @property
    def tiles_iter(self) -> CountingIterator:
        """Iterator over all work tiles (``counting_iterator(0, rows)``)."""
        return CountingIterator(0)

    @property
    def atoms_per_tile_iter(self) -> TransformIterator:
        """Transform iterator computing ``offsets[i+1] - offsets[i]``."""
        offsets = self.tile_offsets
        return TransformIterator(
            CountingIterator(0), lambda i: offsets[i + 1] - offsets[i]
        )

    # ------------------------------------------------------------------
    # Array views used by the vectorized planners
    # ------------------------------------------------------------------
    def atoms_per_tile(self) -> np.ndarray:
        return np.diff(self.tile_offsets)

    def tile_of_atom(self, atom_ids) -> np.ndarray:
        """Map atom id(s) back to their owning tile (binary search)."""
        return (
            np.searchsorted(self.tile_offsets, np.asarray(atom_ids), side="right") - 1
        )

    def atom_range(self, tile: int) -> tuple[int, int]:
        """Half-open atom-id range of one tile."""
        if not 0 <= tile < self.num_tiles:
            raise IndexError(f"tile {tile} out of range for {self.num_tiles} tiles")
        return int(self.tile_offsets[tile]), int(self.tile_offsets[tile + 1])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkSpec(tiles={self.num_tiles}, atoms={self.num_atoms}"
            + (f", label={self.label!r})" if self.label else ")")
        )
