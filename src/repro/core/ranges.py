"""CUDA-enabled ranges (Section 5.1).

The framework's schedules hand work to user kernels as *ranges* consumed by
range-based for loops.  The paper exposes three specialized ranges, all
reproduced here:

* :func:`step_range` -- ``begin`` to ``end`` in steps of ``step``;
* :func:`infinite_range` -- ``begin`` to infinity (persistent kernels);
* :func:`grid_stride_range` -- step by the launch's grid size, with
  ``block_stride_range`` and ``warp_stride_range`` variants.

Ranges are lightweight iterables; they also expose :meth:`StepRange.to_array`
for the vectorized executors.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "StepRange",
    "InfiniteRange",
    "step_range",
    "infinite_range",
    "grid_stride_range",
    "block_stride_range",
    "warp_stride_range",
]


class StepRange:
    """A half-open integer range ``[begin, end)`` with stride ``step``."""

    __slots__ = ("begin", "end", "step_size")

    def __init__(self, begin: int, end: int, step: int = 1):
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.begin = int(begin)
        self.end = int(end)
        self.step_size = int(step)

    def step(self, step: int) -> "StepRange":
        """Fluent stride setter, mirroring ``range(b, e).step(s)`` (Listing 2)."""
        return StepRange(self.begin, self.end, step)

    # Alias used in Listing 4 of the paper.
    stride = step

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.begin, self.end, self.step_size))

    def __len__(self) -> int:
        if self.end <= self.begin:
            return 0
        return -(-(self.end - self.begin) // self.step_size)

    def __contains__(self, value: int) -> bool:
        return (
            self.begin <= value < self.end
            and (value - self.begin) % self.step_size == 0
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, StepRange):
            return NotImplemented
        return (
            (self.begin, self.end, self.step_size)
            == (other.begin, other.end, other.step_size)
        ) or (len(self) == 0 and len(other) == 0)

    def __hash__(self) -> int:
        if len(self) == 0:
            return hash(())
        return hash((self.begin, self.end, self.step_size))

    def to_array(self) -> np.ndarray:
        """Vectorized view of the range's values."""
        return np.arange(self.begin, self.end, self.step_size, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StepRange({self.begin}, {self.end}, step={self.step_size})"


class InfiniteRange:
    """An unbounded range for persistent-kernel style loops.

    The consumer must break out explicitly (e.g. when a work queue is
    drained or an algorithm converges), exactly as a persistent CUDA
    kernel would.
    """

    __slots__ = ("begin", "step_size")

    def __init__(self, begin: int = 0, step: int = 1):
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.begin = int(begin)
        self.step_size = int(step)

    def __iter__(self) -> Iterator[int]:
        value = self.begin
        while True:
            yield value
            value += self.step_size

    def take(self, n: int) -> StepRange:
        """First ``n`` values as a bounded range (mainly for tests)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        return StepRange(self.begin, self.begin + n * self.step_size, self.step_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InfiniteRange({self.begin}, step={self.step_size})"


def step_range(begin: int, end: int, step: int = 1) -> StepRange:
    """A range from ``begin`` to ``end`` in steps of ``step``."""
    return StepRange(begin, end, step)


def infinite_range(begin: int = 0, step: int = 1) -> InfiniteRange:
    """A range from ``begin`` to infinity (persistent kernel mode)."""
    return InfiniteRange(begin, step)


def grid_stride_range(ctx, begin: int, end: int) -> StepRange:
    """Per-thread range striding by the launch's total thread count.

    ``ctx`` is a :class:`~repro.gpusim.simt.ThreadCtx`; thread ``i`` visits
    ``begin + i, begin + i + num_threads, ...``.
    """
    return StepRange(begin + ctx.global_thread_id, end, ctx.num_threads)


def block_stride_range(ctx, begin: int, end: int) -> StepRange:
    """Per-thread range striding by the block size (intra-block split)."""
    return StepRange(begin + ctx.thread_idx, end, ctx.block_dim)


def warp_stride_range(ctx, begin: int, end: int) -> StepRange:
    """Per-thread range striding by the warp size (intra-warp split)."""
    return StepRange(begin + ctx.lane_id, end, ctx.warp_size)
