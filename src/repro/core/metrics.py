"""Load-imbalance metrics.

Quantifies the imbalance a workload *presents* (tile-size statistics) and
the imbalance a schedule *leaves behind* (per-warp cycle statistics).
These feed the ablation benches and the harness's diagnostic columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ImbalanceReport", "imbalance_report", "gini", "peak_to_mean"]


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution (0 = perfectly even)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        return 0.0
    if np.any(v < 0):
        raise ValueError("gini requires non-negative values")
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    # Standard closed form over sorted values.
    index = np.arange(1, n + 1)
    return float((2 * (index * v).sum() - (n + 1) * total) / (n * total))


def peak_to_mean(values: np.ndarray) -> float:
    """Max/mean ratio -- the simplest straggler indicator."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return 1.0
    mean = v.mean()
    if mean == 0:
        return 1.0
    return float(v.max() / mean)


@dataclass(frozen=True)
class ImbalanceReport:
    """Summary statistics of a work (or cycle) distribution."""

    count: int
    mean: float
    std: float
    cv: float
    gini: float
    peak_to_mean: float
    zero_fraction: float

    def is_balanced(self, cv_threshold: float = 0.1) -> bool:
        return self.cv <= cv_threshold


def imbalance_report(values: np.ndarray) -> ImbalanceReport:
    """Compute an :class:`ImbalanceReport` for any non-negative distribution
    (atoms per tile, cycles per warp, atoms per thread, ...)."""
    v = np.asarray(values, dtype=np.float64).reshape(-1)
    if v.size == 0:
        return ImbalanceReport(0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0)
    mean = float(v.mean())
    std = float(v.std())
    return ImbalanceReport(
        count=int(v.size),
        mean=mean,
        std=std,
        cv=std / mean if mean > 0 else 0.0,
        gini=gini(v),
        peak_to_mean=peak_to_mean(v),
        zero_fraction=float((v == 0).mean()),
    )
