"""Warp- and block-mapped schedules (Section 5.2.2).

Each warp (or block) receives an equal share of tiles, processed
sequentially; the atoms *within* a tile are processed in parallel by the
group's lanes, each striding by the group width.  Imbalance across groups
is left to the hardware's oversubscription scheduler (modelled by
:mod:`repro.gpusim.sm_scheduler`).

Both classes share one implementation parameterized by group width; the
paper's group-mapped schedule (see :mod:`.group_mapped`) generalizes them
to arbitrary widths -- these fixed-width variants exist because the paper
reports them as distinct named schedules (Table 1 gets them "for free").
"""

from __future__ import annotations

import numpy as np

from ...gpusim.arch import GpuSpec
from ...gpusim.collectives import reduce_cost
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["WarpMappedSchedule", "BlockMappedSchedule"]


class _GroupPerTileSchedule(Schedule):
    """Shared machinery: tiles strided across groups, atoms lane-parallel."""

    def __init__(self, work: WorkSpec, spec: GpuSpec, launch: LaunchParams):
        super().__init__(work, spec, launch)
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        self.abstraction_tax = spec.costs.range_overhead

    # -- group geometry, defined by subclasses ------------------------------
    def group_size(self) -> int:
        raise NotImplementedError

    def _num_groups(self) -> int:
        return max(1, self.launch.num_threads // self.group_size())

    def _group_of(self, ctx) -> int:
        return ctx.global_thread_id // self.group_size()

    def _rank_in_group(self, ctx) -> int:
        return ctx.global_thread_id % self.group_size()

    # ------------------------------------------------------------------
    # Per-thread view: every lane of a group sees the group's tiles; each
    # lane consumes a lane-strided share of each tile's atoms.
    # ------------------------------------------------------------------
    def tiles(self, ctx) -> StepRange:
        return StepRange(self._group_of(ctx), self.work.num_tiles, 1).step(
            self._num_groups()
        )

    def atoms(self, ctx, tile: int) -> StepRange:
        lo, hi = self.work.atom_range(tile)
        return StepRange(lo + self._rank_in_group(ctx), hi, self.group_size())

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        work, spec, launch = self.work, self.spec, self.launch
        g = self.group_size()
        n_groups = self._num_groups()
        counts = work.atoms_per_tile().astype(np.float64)

        rounds = max(1, -(-work.num_tiles // n_groups))
        padded = np.zeros(rounds * n_groups)
        padded[: work.num_tiles] = counts
        exists = np.zeros(rounds * n_groups, dtype=bool)
        exists[: work.num_tiles] = True

        atom_cost = costs.atom_total(spec) + self.abstraction_tax
        finalize = costs.tile_cycles + spec.costs.loop_overhead + self.abstraction_tax
        if costs.tile_reduction:
            finalize += reduce_cost(spec, g)
        # Lockstep lane-parallel walk of each tile: ceil(atoms / g) rounds.
        per_tile = np.ceil(padded / g) * atom_cost + exists * finalize
        group_totals = per_tile.reshape(rounds, n_groups).sum(axis=0)
        return self._groups_to_warps(group_totals)

    def _groups_to_warps(self, group_totals: np.ndarray) -> np.ndarray:
        """Distribute per-group durations onto the launch's warps."""
        spec, launch = self.spec, self.launch
        ws = spec.warp_size
        g = self.group_size()
        warps_per_block = launch.block_dim // ws
        n_warps = launch.grid_dim * warps_per_block
        if g >= ws:
            # A group spans g/ws warps; each of them is busy for the whole
            # group duration (they advance in lockstep rounds together).
            warps_per_group = g // ws
            wc = np.repeat(group_totals, warps_per_group)
        else:
            # A warp hosts ws/g groups side by side; it runs as long as its
            # slowest resident group.
            groups_per_warp = ws // g
            padded = np.zeros(n_warps * groups_per_warp)
            padded[: group_totals.size] = group_totals
            wc = padded.reshape(n_warps, groups_per_warp).max(axis=1)
        if wc.size < n_warps:
            wc = np.pad(wc, (0, n_warps - wc.size))
        return wc[:n_warps].reshape(launch.grid_dim, warps_per_block)

    @classmethod
    def _oversubscribed_launch(
        cls, work: WorkSpec, spec: GpuSpec, group_size: int, block_dim: int
    ) -> LaunchParams:
        """Enough groups to oversubscribe the device, capped by tile count."""
        block_dim = cls.clamp_block(spec, block_dim)
        group_size = min(group_size, block_dim)
        groups_per_block = max(1, block_dim // group_size)
        resident_blocks = spec.resident_blocks_per_sm(block_dim) * spec.num_sms
        target_groups = resident_blocks * groups_per_block * 8  # 8x oversubscription
        wanted_groups = min(max(1, work.num_tiles), target_groups)
        grid = max(1, -(-wanted_groups // groups_per_block))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)


@register_schedule("warp_mapped")
class WarpMappedSchedule(_GroupPerTileSchedule):
    """One warp per tile, sequential over the warp's assigned tiles."""

    def group_size(self) -> int:
        return self.spec.warp_size

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        return cls._oversubscribed_launch(work, spec, spec.warp_size, block_dim)


@register_schedule("block_mapped")
class BlockMappedSchedule(_GroupPerTileSchedule):
    """One thread block per tile, sequential over the block's tiles."""

    def group_size(self) -> int:
        return self.launch.block_dim

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        return cls._oversubscribed_launch(work, spec, block_dim, block_dim)
