"""Nonzero-splitting schedule (related work, Section 7).

Splits only the *atoms* evenly across threads, ignoring tile boundaries
(Baxter's ModernGPU approach and Dalton et al.'s row-splitting SpMV).
Compared to merge-path, a thread's share is found with a single 1-D
binary search in the tile offsets (cheaper setup), but tile boundaries
are not counted as work: a thread whose atom range spans many tiny or
empty tiles pays their per-tile overhead on top of its fixed atom share,
so balance degrades on empty-heavy inputs -- exactly the trade-off the
related work discusses.
"""

from __future__ import annotations

import numpy as np

from ...gpusim.arch import GpuSpec
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["NonzeroSplitSchedule"]


@register_schedule("nonzero_split")
class NonzeroSplitSchedule(Schedule):
    """Even atom split; tiles recovered by binary search."""

    DEFAULT_ATOMS_PER_THREAD = 8

    def __init__(
        self,
        work: WorkSpec,
        spec: GpuSpec,
        launch: LaunchParams,
        *,
        atoms_per_thread: int | None = None,
    ):
        super().__init__(work, spec, launch)
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        n_threads = launch.num_threads
        self.atoms_per_thread = (
            int(atoms_per_thread)
            if atoms_per_thread is not None
            else max(1, -(-work.num_atoms // n_threads))
        )
        self.abstraction_tax = spec.costs.range_overhead
        bounds = np.minimum(
            np.arange(n_threads + 1, dtype=np.int64) * self.atoms_per_thread,
            work.num_atoms,
        )
        self._atom_bounds = bounds
        # First tile containing each boundary atom.
        self._tile_at_bound = np.maximum(
            0, np.searchsorted(work.tile_offsets, bounds, side="right") - 1
        )

    # ------------------------------------------------------------------
    # Per-thread view
    # ------------------------------------------------------------------
    def thread_partition(self, thread_id: int) -> tuple[int, int, int, int]:
        """(first_tile, last_tile_exclusive, atom_begin, atom_end)."""
        j0 = int(self._atom_bounds[thread_id])
        j1 = int(self._atom_bounds[thread_id + 1])
        if j0 >= j1:
            return 0, 0, j0, j1
        i0 = int(self._tile_at_bound[thread_id])
        # Last touched tile is the one owning atom j1-1.
        i_last = int(self.work.tile_of_atom(j1 - 1))
        return i0, i_last + 1, j0, j1

    def tiles(self, ctx) -> StepRange:
        i0, i_end, _j0, _j1 = self.thread_partition(ctx.global_thread_id)
        return StepRange(i0, i_end)

    def atoms(self, ctx, tile: int) -> StepRange:
        _i0, _i1, j0, j1 = self.thread_partition(ctx.global_thread_id)
        lo, hi = self.work.atom_range(tile)
        return StepRange(max(lo, j0), min(hi, j1))

    def owns_tile_fully(self, ctx, tile: int) -> bool:
        _i0, _i1, j0, j1 = self.thread_partition(ctx.global_thread_id)
        lo, hi = self.work.atom_range(tile)
        return j0 <= lo and hi <= j1

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    def setup_cycles(self, costs: WorkCosts) -> float:
        steps = float(np.ceil(np.log2(max(2, self.work.num_tiles))))
        return steps * self.spec.costs.binary_search_step

    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        spec, launch = self.spec, self.launch
        c = spec.costs
        j0 = self._atom_bounds[:-1]
        j1 = self._atom_bounds[1:]
        atoms_per_thread = (j1 - j0).astype(np.float64)
        nonempty = j1 > j0
        # Tiles *touched*, including any empty tiles the range spans.
        first = self._tile_at_bound[:-1]
        last = np.maximum(
            first,
            np.maximum(
                0,
                np.searchsorted(self.work.tile_offsets, j1, side="left") - 1,
            ),
        )
        tiles_touched = np.where(nonempty, (last - first + 1).astype(np.float64), 0.0)

        atom_cost = costs.atom_total(spec) + self.abstraction_tax
        tile_cost = costs.tile_cycles + c.loop_overhead + self.abstraction_tax
        ends_mid = np.where(
            nonempty & (j1 < self.work.num_atoms), 1.0, 0.0
        )  # boundary fixup atomics
        per_thread = (
            atoms_per_thread * atom_cost
            + tiles_touched * tile_cost
            + ends_mid * c.atomic
        )

        ws = spec.warp_size
        warps_per_block = launch.block_dim // ws
        padded = np.zeros(launch.grid_dim * warps_per_block * ws)
        n_threads = launch.num_threads
        padded[: min(n_threads, per_thread.size)] = per_thread[:n_threads]
        return padded.reshape(launch.grid_dim, warps_per_block, ws).max(axis=2)

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 128
    ) -> LaunchParams:
        block_dim = cls.clamp_block(spec, block_dim)
        threads = max(1, -(-max(1, work.num_atoms) // cls.DEFAULT_ATOMS_PER_THREAD))
        grid = max(1, -(-threads // block_dim))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)
