"""Thread-mapped schedule: one tile per thread (Listing 2).

The most straightforward schedule, common in the literature: thread ``i``
processes tile ``i``, striding by the grid size, and walks the tile's
atoms sequentially.  It is very cheap to schedule (no setup at all) and
performs well when tiles are uniformly small -- e.g. SpVV, diagonal
matrices -- but collapses under skewed tile sizes, because the lockstep
lanes of a warp all wait for the lane with the longest tile.
"""

from __future__ import annotations

import numpy as np

from ...gpusim.arch import GpuSpec
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["ThreadMappedSchedule"]


@register_schedule("thread_mapped")
class ThreadMappedSchedule(Schedule):
    """Tile-per-thread scheduling with grid-stride round-robin."""

    def __init__(self, work: WorkSpec, spec: GpuSpec, launch: LaunchParams):
        super().__init__(work, spec, launch)
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        #: Per-iteration bookkeeping charged for consuming work through the
        #: framework's range objects; hardwired baselines set this to zero.
        self.abstraction_tax = spec.costs.range_overhead

    # ------------------------------------------------------------------
    # Per-thread view (Listing 2)
    # ------------------------------------------------------------------
    def tiles(self, ctx) -> StepRange:
        return StepRange(ctx.global_thread_id, self.work.num_tiles, 1).step(
            ctx.num_threads
        )

    def atoms(self, ctx, tile: int) -> StepRange:
        lo, hi = self.work.atom_range(tile)
        return StepRange(lo, hi).step(1)

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        work, spec, launch = self.work, self.spec, self.launch
        n_threads = launch.num_threads
        counts = work.atoms_per_tile().astype(np.float64)

        rounds = max(1, -(-work.num_tiles // n_threads))
        padded = np.zeros(rounds * n_threads)
        padded[: work.num_tiles] = counts
        exists = np.zeros(rounds * n_threads, dtype=bool)
        exists[: work.num_tiles] = True

        atom_cost = costs.atom_total(spec) + self.abstraction_tax
        tile_cost = costs.tile_cycles + spec.costs.loop_overhead + self.abstraction_tax
        # Per (round, thread): tile overhead if a tile exists in this round,
        # plus its atoms walked sequentially by this one lane.
        per_thread = padded * atom_cost + exists * tile_cost
        per_thread = per_thread.reshape(rounds, n_threads)

        ws = spec.warp_size
        warps_per_block = launch.block_dim // ws
        n_warps = launch.grid_dim * warps_per_block
        # Lockstep: within each round, a warp advances at the pace of its
        # slowest lane -- the mechanism that makes this schedule fragile
        # under skew.
        per_round_warp = per_thread.reshape(rounds, n_warps, ws).max(axis=2)
        warp_totals = per_round_warp.sum(axis=0)
        return warp_totals.reshape(launch.grid_dim, warps_per_block)

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        """Listing 3's sizing: ``grid = ceil(rows / block)``, one pass."""
        block_dim = cls.clamp_block(spec, block_dim)
        grid = max(1, -(-max(1, work.num_tiles) // block_dim))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)
