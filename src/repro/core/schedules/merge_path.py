"""Merge-path schedule (Section 5.2.1; Merrill & Garland's SpMV balancer).

Merge-path treats each atom *and* each tile boundary as one unit of work,
divides the combined ``num_tiles + num_atoms`` items evenly across
threads, and has each thread run a two-dimensional binary search (along
its *diagonal* of the merge matrix) to find the (tile, atom) coordinate
where its share begins.  Threads then sequentially consume their items:
crossing a tile boundary finishes that tile ("complete" tiles); a share
that ends mid-tile leaves a "partial" tile whose contribution is combined
during a fixup step (modelled here as one atomic per boundary).

The result is near-perfect balance regardless of how skewed the tile
sizes are -- at the price of the setup search and the fixup.  Decoupled
from SpMV (where CUB hardwires it), the same schedule serves any
tiles+atoms workload, which is precisely the paper's point.
"""

from __future__ import annotations

import numpy as np

from ...gpusim.arch import GpuSpec
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["MergePathSchedule", "merge_path_partition"]


def merge_path_partition(
    tile_offsets: np.ndarray, num_atoms: int, diagonals: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """2-D binary search: split each diagonal into (tiles, atoms) consumed.

    Merges the "row-end offsets" list ``A[i] = tile_offsets[i+1]`` with the
    natural numbers ``B[j] = j`` (atom ids).  For each diagonal ``d`` the
    returned ``(i, j)`` satisfies ``i + j == d`` with ``i`` tiles and ``j``
    atoms consumed -- the standard CUB/ModernGPU MergePathSearch.
    """
    offsets = np.asarray(tile_offsets, dtype=np.int64)
    num_tiles = offsets.size - 1
    d = np.asarray(diagonals, dtype=np.int64)
    if np.any(d < 0) or np.any(d > num_tiles + num_atoms):
        raise ValueError("diagonal out of range")
    if num_tiles == 0:
        return np.zeros_like(d), d.copy()
    lo = np.maximum(0, d - num_atoms)
    hi = np.minimum(d, num_tiles)
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        # Inactive lanes may hold mid == num_tiles; clamp for safe indexing
        # (their cond value is discarded by the masks below).
        mid_safe = np.minimum(mid, num_tiles - 1)
        # Take from A (finish tile `mid`) while its end offset sorts before
        # the opposing atom id on the diagonal.
        cond = offsets[mid_safe + 1] <= d - mid - 1
        lo = np.where(active & cond, mid + 1, lo)
        hi = np.where(active & ~cond, mid, hi)
    return lo, d - lo


@register_schedule("merge_path")
class MergePathSchedule(Schedule):
    """Evenly split ``tiles + atoms`` work items across threads."""

    #: Default merge items per thread (CUB uses a comparable per-thread
    #: grain; the ablation bench sweeps this).
    DEFAULT_ITEMS_PER_THREAD = 8

    def __init__(
        self,
        work: WorkSpec,
        spec: GpuSpec,
        launch: LaunchParams,
        *,
        items_per_thread: int | None = None,
    ):
        super().__init__(work, spec, launch)
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        total = work.num_tiles + work.num_atoms
        n_threads = launch.num_threads
        self.items_per_thread = (
            int(items_per_thread)
            if items_per_thread is not None
            else max(1, -(-total // n_threads))
        )
        self.abstraction_tax = spec.costs.range_overhead
        # Partition every thread's diagonal once, vectorized.  Thread t's
        # merge range is [d_t, d_{t+1}).
        diagonals = np.minimum(
            np.arange(n_threads + 1, dtype=np.int64) * self.items_per_thread, total
        )
        self._tile_bounds, self._atom_bounds = merge_path_partition(
            work.tile_offsets, work.num_atoms, diagonals
        )

    # ------------------------------------------------------------------
    # Partition accessors
    # ------------------------------------------------------------------
    def thread_partition(self, thread_id: int) -> tuple[int, int, int, int]:
        """(tile_begin, tile_end, atom_begin, atom_end) of one thread.

        ``tile_end`` counts *finished* tiles; the thread may additionally
        touch a partial tail tile (see :meth:`tiles`).
        """
        return (
            int(self._tile_bounds[thread_id]),
            int(self._tile_bounds[thread_id + 1]),
            int(self._atom_bounds[thread_id]),
            int(self._atom_bounds[thread_id + 1]),
        )

    # ------------------------------------------------------------------
    # Per-thread view
    # ------------------------------------------------------------------
    def tiles(self, ctx) -> StepRange:
        t = ctx.global_thread_id
        i0, i1, _j0, j1 = self.thread_partition(t)
        offsets = self.work.tile_offsets
        # Include the partial tail tile when the atom range extends past
        # the last finished tile's end.
        end = i1
        if i1 < self.work.num_tiles and j1 > offsets[i1]:
            end = i1 + 1
        return StepRange(i0, end)

    def atoms(self, ctx, tile: int) -> StepRange:
        t = ctx.global_thread_id
        _i0, _i1, j0, j1 = self.thread_partition(t)
        lo, hi = self.work.atom_range(tile)
        return StepRange(max(lo, j0), min(hi, j1))

    def owns_tile_fully(self, ctx, tile: int) -> bool:
        """True when this thread consumes every atom of ``tile`` (so its
        output can be stored directly rather than combined atomically)."""
        t = ctx.global_thread_id
        _i0, _i1, j0, j1 = self.thread_partition(t)
        lo, hi = self.work.atom_range(tile)
        return j0 <= lo and hi <= j1

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    def setup_cycles(self, costs: WorkCosts) -> float:
        total = max(2, self.work.num_tiles + self.work.num_atoms)
        steps = float(np.ceil(np.log2(total)))
        return steps * self.spec.costs.binary_search_step

    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        spec, launch = self.spec, self.launch
        c = spec.costs
        tiles_per_thread = np.diff(self._tile_bounds).astype(np.float64)
        atoms_per_thread = np.diff(self._atom_bounds).astype(np.float64)

        atom_cost = costs.atom_total(spec) + self.abstraction_tax
        tile_cost = costs.tile_cycles + c.loop_overhead + self.abstraction_tax
        # Boundary fixup: a thread whose range ends mid-tile combines its
        # partial with an atomic (the "partial tiles" loop of Section 5.2.1).
        offsets = self.work.tile_offsets
        ends_mid_tile = (
            self._atom_bounds[1:]
            > offsets[np.minimum(self._tile_bounds[1:], self.work.num_tiles)]
        ).astype(np.float64)
        per_thread = (
            atoms_per_thread * atom_cost
            + tiles_per_thread * tile_cost
            + ends_mid_tile * c.atomic
        )

        ws = spec.warp_size
        warps_per_block = launch.block_dim // ws
        n_threads = launch.num_threads
        padded = np.zeros(launch.grid_dim * warps_per_block * ws)
        padded[: min(n_threads, per_thread.size)] = per_thread[:n_threads]
        wc = padded.reshape(launch.grid_dim, warps_per_block, ws).max(axis=2)
        return wc

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 128
    ) -> LaunchParams:
        block_dim = cls.clamp_block(spec, block_dim)
        total = max(1, work.num_tiles + work.num_atoms)
        threads = max(1, -(-total // cls.DEFAULT_ITEMS_PER_THREAD))
        grid = max(1, -(-threads // block_dim))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)
