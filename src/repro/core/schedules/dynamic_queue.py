"""Dynamic (queue-based, persistent-kernel) load balancing.

The paper's abstraction "aims to support both static and dynamic
schedules" (Section 1) and provides ``infinite_range`` precisely for
persistent-kernel mode (Section 5.1); the related work (Cederman &
Tsigas, Tzeng et al., Atos) is all queue-based dynamic scheduling.  This
module supplies that missing member of the family:

* a **persistent** launch: exactly as many threads as the device can
  keep resident (no oversubscription -- the workers never retire);
* a global **work queue**: an atomic tile counter; every worker pops a
  chunk of tiles, processes it, and loops (an ``infinite_range`` broken
  when the queue drains);
* load balance emerges *dynamically*: fast workers simply pop more
  chunks, so stragglers are bounded by one chunk's worth of work --
  at the price of one global atomic per pop.

The planner models the queue with greedy list scheduling (pops go to the
earliest-free worker, which is exactly what an atomic counter produces),
so chunk size trades contention against tail imbalance -- the classic
dynamic-scheduling knob, swept in the ablation benches.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from ...gpusim.arch import GpuSpec
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["DynamicQueueSchedule"]


@register_schedule("dynamic_queue")
class DynamicQueueSchedule(Schedule):
    """Persistent threads popping tile chunks from a global atomic queue."""

    DEFAULT_CHUNK = 4

    def __init__(
        self,
        work: WorkSpec,
        spec: GpuSpec,
        launch: LaunchParams,
        *,
        chunk_size: int | None = None,
    ):
        super().__init__(work, spec, launch)
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        self.chunk_size = int(chunk_size) if chunk_size is not None else self.DEFAULT_CHUNK
        if self.chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {self.chunk_size}")
        self.abstraction_tax = spec.costs.range_overhead
        #: The global queue head.  The SIMT interpreter executes threads
        #: sequentially, which is a valid linearization of the atomic pops;
        #: reset before every interpreted traversal.
        self._queue_head = 0

    # ------------------------------------------------------------------
    # Queue
    # ------------------------------------------------------------------
    def num_chunks(self) -> int:
        return -(-self.work.num_tiles // self.chunk_size)

    def reset_queue(self) -> None:
        """Re-arm the queue for a fresh interpreted pass."""
        self._queue_head = 0

    def _pop_chunk(self) -> int | None:
        """Atomic ``fetch_add`` on the queue head (linearized)."""
        if self._queue_head >= self.num_chunks():
            return None
        chunk = self._queue_head
        self._queue_head += 1
        return chunk

    def chunk_tiles(self, chunk: int) -> tuple[int, int]:
        lo = min(chunk * self.chunk_size, self.work.num_tiles)
        return lo, min(lo + self.chunk_size, self.work.num_tiles)

    # ------------------------------------------------------------------
    # Per-thread view: a persistent loop over queue pops.  Unlike the
    # static schedules, the tiles a thread sees depend on pop order; the
    # exactly-once coverage invariant holds for *any* linearization.
    # ------------------------------------------------------------------
    def tiles(self, ctx) -> Iterator[int]:
        while True:  # the persistent kernel's infinite_range
            chunk = self._pop_chunk()
            if chunk is None:
                return
            lo, hi = self.chunk_tiles(chunk)
            yield from range(lo, hi)

    def atoms(self, ctx, tile: int) -> StepRange:
        lo, hi = self.work.atom_range(tile)
        return StepRange(lo, hi)

    def flat_atoms(self, ctx):
        for tile in self.tiles(ctx):
            for atom in self.atoms(ctx, tile):
                yield tile, atom

    # ------------------------------------------------------------------
    # Planner view: greedy list scheduling == an atomic-counter queue.
    # ------------------------------------------------------------------
    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        work, spec, launch = self.work, self.spec, self.launch
        counts = work.atoms_per_tile().astype(np.float64)
        atom_cost = costs.atom_total(spec) + self.abstraction_tax
        tile_cost = costs.tile_cycles + spec.costs.loop_overhead + self.abstraction_tax
        per_tile = counts * atom_cost + tile_cost

        n_chunks = self.num_chunks()
        chunk_ids = np.minimum(
            np.arange(n_chunks + 1, dtype=np.int64) * self.chunk_size,
            work.num_tiles,
        )
        tile_prefix = np.zeros(work.num_tiles + 1)
        np.cumsum(per_tile, out=tile_prefix[1:])
        chunk_cost = np.diff(tile_prefix[chunk_ids])
        pop_cost = spec.costs.atomic  # the fetch_add per pop

        n_workers = launch.num_threads
        if n_chunks <= n_workers:
            per_worker = np.zeros(n_workers)
            per_worker[:n_chunks] = chunk_cost + pop_cost
        else:
            per_worker = _list_schedule_loads(chunk_cost + pop_cost, n_workers)

        ws = spec.warp_size
        warps_per_block = launch.block_dim // ws
        padded = np.zeros(launch.grid_dim * warps_per_block * ws)
        padded[: per_worker.size] = per_worker
        return padded.reshape(launch.grid_dim, warps_per_block, ws).max(axis=2)

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        """Persistent sizing: exactly the device's resident capacity."""
        block_dim = cls.clamp_block(spec, block_dim)
        resident_blocks = spec.resident_blocks_per_sm(block_dim) * spec.num_sms
        needed_threads = max(1, work.num_tiles)
        grid = min(resident_blocks, max(1, -(-needed_threads // block_dim)))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)


def _list_schedule_loads(costs: np.ndarray, n_workers: int) -> np.ndarray:
    """Total load per worker under earliest-free-worker dispatch."""
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    loads = np.zeros(n_workers)
    for c in costs:
        t, w = heapq.heappop(heap)
        t += float(c)
        loads[w] = t
        heapq.heappush(heap, (t, w))
    return loads
