"""Logarithmic Radix Binning (LRB) schedule -- related-work extension.

Fox/Green et al. bin tiles by ``ceil(log2(atoms))`` and process bins of
like-sized tiles together so that neighbouring processors receive similar
amounts of work.  We implement the binning as a tile *permutation*
(descending bin order) composed with warp-per-tile processing: after the
permutation, a warp's strided tile assignment mixes only similar sizes,
removing the intra-round lockstep skew that plain warp-mapped scheduling
suffers.

This schedule is not part of the paper's evaluated set; it demonstrates
the abstraction's claim that *new* load-balancing algorithms drop in as
schedules without touching application code, and it appears in the
ablation benches.
"""

from __future__ import annotations

import numpy as np

from ...gpusim.arch import GpuSpec
from ...gpusim.collectives import reduce_cost
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["LrbSchedule", "lrb_bins"]


def lrb_bins(atoms_per_tile: np.ndarray) -> np.ndarray:
    """Logarithmic bin id of each tile: ``ceil(log2(atoms + 1))``."""
    counts = np.asarray(atoms_per_tile, dtype=np.int64)
    if counts.size and counts.min() < 0:
        raise ValueError("atom counts must be non-negative")
    # bit_length of n gives ceil(log2(n+1)) for n >= 0.
    bins = np.zeros(counts.size, dtype=np.int64)
    nz = counts > 0
    bins[nz] = np.floor(np.log2(counts[nz])).astype(np.int64) + 1
    return bins


@register_schedule("lrb")
class LrbSchedule(Schedule):
    """Warp-per-tile over a bin-sorted tile permutation."""

    def __init__(self, work: WorkSpec, spec: GpuSpec, launch: LaunchParams):
        super().__init__(work, spec, launch)
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        self.abstraction_tax = spec.costs.range_overhead
        counts = work.atoms_per_tile()
        bins = lrb_bins(counts)
        # Stable sort: descending bin, preserving tile order inside a bin.
        self.permutation = np.argsort(-bins, kind="stable").astype(np.int64)

    # ------------------------------------------------------------------
    # Group geometry (warp-per-tile on the permuted order)
    # ------------------------------------------------------------------
    def _num_groups(self) -> int:
        return max(1, self.launch.num_threads // self.spec.warp_size)

    def tiles(self, ctx):
        g = ctx.global_thread_id // self.spec.warp_size
        for slot in range(g, self.work.num_tiles, self._num_groups()):
            yield int(self.permutation[slot])

    def atoms(self, ctx, tile: int) -> StepRange:
        lo, hi = self.work.atom_range(tile)
        lane = ctx.global_thread_id % self.spec.warp_size
        return StepRange(lo + lane, hi, self.spec.warp_size)

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    def setup_cycles(self, costs: WorkCosts) -> float:
        """Binning pass: one read + histogram update + scatter per tile,
        spread across the launch's threads."""
        c = self.spec.costs
        per_tile = 2 * (c.global_load_coalesced + c.global_store) + 2 * c.alu
        tiles_per_thread = -(-self.work.num_tiles // self.launch.num_threads)
        return tiles_per_thread * per_tile

    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        work, spec, launch = self.work, self.spec, self.launch
        ws = spec.warp_size
        n_groups = self._num_groups()
        counts = work.atoms_per_tile().astype(np.float64)[self.permutation]

        rounds = max(1, -(-work.num_tiles // n_groups))
        padded = np.zeros(rounds * n_groups)
        padded[: work.num_tiles] = counts
        exists = np.zeros(rounds * n_groups, dtype=bool)
        exists[: work.num_tiles] = True

        atom_cost = costs.atom_total(spec) + self.abstraction_tax
        finalize = costs.tile_cycles + spec.costs.loop_overhead + self.abstraction_tax
        if costs.tile_reduction:
            finalize += reduce_cost(spec, ws)
        per_tile = np.ceil(padded / ws) * atom_cost + exists * finalize
        group_totals = per_tile.reshape(rounds, n_groups).sum(axis=0)

        warps_per_block = launch.block_dim // ws
        n_warps = launch.grid_dim * warps_per_block
        wc = np.zeros(n_warps)
        wc[: min(n_warps, group_totals.size)] = group_totals[:n_warps]
        return wc.reshape(launch.grid_dim, warps_per_block)

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        block_dim = cls.clamp_block(spec, block_dim)
        groups_per_block = max(1, block_dim // spec.warp_size)
        resident_blocks = spec.resident_blocks_per_sm(block_dim) * spec.num_sms
        target_groups = resident_blocks * groups_per_block * 8
        wanted = min(max(1, work.num_tiles), target_groups)
        grid = max(1, -(-wanted // groups_per_block))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)
