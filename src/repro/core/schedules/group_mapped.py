"""Group-mapped schedule: the paper's novel contribution (Section 5.2.3).

Generalizes warp- and block-mapped scheduling to *arbitrary* group sizes
using CUDA's Cooperative Groups model.  Each group:

1. takes an equal contiguous share of tiles,
2. stages the atom count of each tile into scratchpad memory,
3. runs a group-wide **prefix sum** over those counts -- the last element
   is the group's total atom count, and positions map sums to tiles,
4. processes the chunk's atoms in parallel, lanes striding by the group
   width; the owning tile of each atom is recovered with a binary search
   in the prefix array (``get_tile(atom_id)``).

Because atoms -- not tiles -- are the parallel dimension, intra-group
imbalance vanishes (lanes differ by at most one atom), which is why this
schedule excels on matrices whose rows are small but uneven.  Setting the
group size to the warp or block width recovers those schedules "for free",
and porting to AMD's 64-wide wavefronts is a one-constant change.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...gpusim.arch import GpuSpec
from ...gpusim.collectives import scan_cost
from ..ranges import StepRange
from ..schedule import LaunchParams, Schedule, WorkCosts, register_schedule
from ..work import WorkSpec

__all__ = ["GroupMappedSchedule"]


@register_schedule("group_mapped")
class GroupMappedSchedule(Schedule):
    """Tile-per-group scheduling with prefix-sum atom balancing."""

    def __init__(
        self,
        work: WorkSpec,
        spec: GpuSpec,
        launch: LaunchParams,
        *,
        group_size: int | None = None,
    ):
        super().__init__(work, spec, launch)
        g = spec.warp_size if group_size is None else int(group_size)
        if g <= 0:
            raise ValueError(f"group_size must be positive, got {g}")
        if launch.block_dim % g:
            raise ValueError(
                f"group_size {g} must evenly divide block_dim {launch.block_dim}"
            )
        if launch.block_dim % spec.warp_size:
            raise ValueError(
                f"block_dim {launch.block_dim} must be a multiple of the warp "
                f"size {spec.warp_size}"
            )
        self.group_size = g
        self.abstraction_tax = spec.costs.range_overhead

    # ------------------------------------------------------------------
    # Group geometry: contiguous chunks of tiles per group.
    # ------------------------------------------------------------------
    def num_groups(self) -> int:
        return max(1, self.launch.num_threads // self.group_size)

    def tiles_per_group(self) -> int:
        return max(1, -(-self.work.num_tiles // self.num_groups()))

    def chunk_bounds(self, group: int) -> tuple[int, int]:
        """Half-open tile range assigned to ``group``."""
        tpg = self.tiles_per_group()
        lo = min(group * tpg, self.work.num_tiles)
        hi = min(lo + tpg, self.work.num_tiles)
        return lo, hi

    def _group_of(self, ctx) -> int:
        return ctx.global_thread_id // self.group_size

    def _rank_in_group(self, ctx) -> int:
        return ctx.global_thread_id % self.group_size

    # ------------------------------------------------------------------
    # Per-thread view.
    #
    # The canonical consumption pattern is the *flat* one of Listing 5:
    # ``for atom in config.flat_atoms(ctx)`` with ``get_tile`` recovering
    # the owning tile.  A nested tiles()/atoms() view is also provided for
    # kernels written against the Listing 3 pattern.
    # ------------------------------------------------------------------
    def flat_atoms(self, ctx) -> Iterator[tuple[int, int]]:
        lo_tile, hi_tile = self.chunk_bounds(self._group_of(ctx))
        offsets = self.work.tile_offsets
        atom_lo = int(offsets[lo_tile])
        atom_hi = int(offsets[hi_tile])
        for atom in range(atom_lo + self._rank_in_group(ctx), atom_hi, self.group_size):
            yield self.get_tile(atom), atom

    def tiles(self, ctx) -> StepRange:
        lo, hi = self.chunk_bounds(self._group_of(ctx))
        return StepRange(lo, hi)

    def atoms(self, ctx, tile: int) -> StepRange:
        lo, hi = self.work.atom_range(tile)
        return StepRange(lo + self._rank_in_group(ctx), hi, self.group_size)

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        work, spec, launch = self.work, self.spec, self.launch
        g = self.group_size
        n_groups = self.num_groups()
        tpg = self.tiles_per_group()
        offsets = work.tile_offsets

        chunk_lo = np.minimum(np.arange(n_groups, dtype=np.int64) * tpg, work.num_tiles)
        chunk_hi = np.minimum(chunk_lo + tpg, work.num_tiles)
        chunk_tiles = (chunk_hi - chunk_lo).astype(np.float64)
        chunk_atoms = (offsets[chunk_hi] - offsets[chunk_lo]).astype(np.float64)

        c = spec.costs
        # Setup: cooperative staging of atom counts (coalesced loads,
        # g lanes at a time) + the group-wide prefix sum.
        staging_rounds = np.ceil(chunk_tiles / g)
        setup = (
            staging_rounds * (c.global_load_coalesced + c.shared_store + c.alu)
            + scan_cost(spec, g, tpg)
        )
        # Main loop: atoms strided across lanes; each atom pays the user's
        # cost plus the get_tile binary search in the prefix array.
        search = max(1.0, np.ceil(np.log2(max(2, tpg)))) * c.binary_search_step
        atom_cost = costs.atom_total(spec) + self.abstraction_tax + search
        atom_rounds = np.ceil(chunk_atoms / g)
        body = atom_rounds * atom_cost
        # Per-tile finalization (output write / partial combine), spread
        # across the group's lanes.
        finalize_cost = costs.tile_cycles + (c.atomic if costs.tile_reduction else 0.0)
        finalize = np.ceil(chunk_tiles / g) * finalize_cost
        group_totals = setup + body + finalize

        return self._groups_to_warps(group_totals)

    def _groups_to_warps(self, group_totals: np.ndarray) -> np.ndarray:
        spec, launch = self.spec, self.launch
        ws = spec.warp_size
        g = self.group_size
        warps_per_block = launch.block_dim // ws
        n_warps = launch.grid_dim * warps_per_block
        if g >= ws:
            wc = np.repeat(group_totals, g // ws)
        else:
            groups_per_warp = ws // g
            padded = np.zeros(n_warps * groups_per_warp)
            padded[: group_totals.size] = group_totals
            wc = padded.reshape(n_warps, groups_per_warp).max(axis=1)
        if wc.size < n_warps:
            wc = np.pad(wc, (0, n_warps - wc.size))
        return wc[:n_warps].reshape(launch.grid_dim, warps_per_block)

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        """Oversubscribe with warp-sized groups by default."""
        block_dim = cls.clamp_block(spec, block_dim)
        groups_per_block = max(1, block_dim // spec.warp_size)
        resident_blocks = spec.resident_blocks_per_sm(block_dim) * spec.num_sms
        target_groups = resident_blocks * groups_per_block * 8
        wanted = min(max(1, work.num_tiles), target_groups)
        grid = max(1, -(-wanted // groups_per_block))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)
