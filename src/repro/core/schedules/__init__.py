"""Built-in load-balancing schedules.

Importing this package registers every schedule with the global registry
(:func:`repro.core.schedule.make_schedule` resolves them by name):

====================  =====================================================
``thread_mapped``     tile per thread (Listing 2)
``warp_mapped``       tile per warp, atoms lane-parallel
``block_mapped``      tile per block, atoms lane-parallel
``group_mapped``      tile chunk per cooperative group + prefix-sum (novel)
``merge_path``        even tiles+atoms split via 2-D binary search
``nonzero_split``     even atom split (ModernGPU-style; related work)
``lrb``               logarithmic radix binning (extension)
``dynamic_queue``     persistent kernel + atomic work queue (dynamic)
====================  =====================================================
"""

from .dynamic_queue import DynamicQueueSchedule
from .group_mapped import GroupMappedSchedule
from .lrb import LrbSchedule, lrb_bins
from .merge_path import MergePathSchedule, merge_path_partition
from .nonzero_split import NonzeroSplitSchedule
from .thread_mapped import ThreadMappedSchedule
from .warp_block import BlockMappedSchedule, WarpMappedSchedule

__all__ = [
    "DynamicQueueSchedule",
    "GroupMappedSchedule",
    "LrbSchedule",
    "lrb_bins",
    "MergePathSchedule",
    "merge_path_partition",
    "NonzeroSplitSchedule",
    "ThreadMappedSchedule",
    "BlockMappedSchedule",
    "WarpMappedSchedule",
]
