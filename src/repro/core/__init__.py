"""``repro.core`` -- the paper's load-balancing abstraction.

Three stages, mirroring Figure 1:

1. **Work definition** (:mod:`.work`, :mod:`.iterators`): sparse data
   expressed as atoms / tiles / tile sets through iterators.
2. **Load balancing** (:mod:`.schedule`, :mod:`.schedules`): pluggable
   schedules mapping atom/tile subsequences to processor ids.
3. **Work execution** (:mod:`.ranges`): user-owned kernels consume the
   balanced work as composable ranges.

Plus the Section 6.2 heuristic selector (:mod:`.heuristic`), the
schedule-selection *policies* built on it (:mod:`.policy`: fixed /
heuristic / per-kernel / oracle-best) and imbalance metrics
(:mod:`.metrics`).
"""

from . import schedules as _schedules  # noqa: F401  (registers schedules)
from .heuristic import DEFAULT_HEURISTIC, HeuristicParams, select_schedule
from .iterators import (
    ArrayIterator,
    ConstantIterator,
    CountingIterator,
    TransformIterator,
    ZipIterator,
    counting_iterator,
    make_transform_iterator,
)
from .metrics import ImbalanceReport, gini, imbalance_report, peak_to_mean
from .policy import (
    FixedPolicy,
    HeuristicPolicy,
    OracleBestPolicy,
    PerKernelPolicy,
    PolicyError,
    SchedulePolicy,
    as_policy,
)
from .ranges import (
    InfiniteRange,
    StepRange,
    block_stride_range,
    grid_stride_range,
    infinite_range,
    step_range,
    warp_stride_range,
)
from .schedule import (
    LaunchParams,
    Schedule,
    WorkCosts,
    available_schedules,
    make_schedule,
    register_schedule,
)
from .schedules import (
    BlockMappedSchedule,
    GroupMappedSchedule,
    LrbSchedule,
    MergePathSchedule,
    NonzeroSplitSchedule,
    ThreadMappedSchedule,
    WarpMappedSchedule,
    merge_path_partition,
)
from .work import WorkSpec

__all__ = [
    "DEFAULT_HEURISTIC",
    "HeuristicParams",
    "select_schedule",
    "ArrayIterator",
    "ConstantIterator",
    "CountingIterator",
    "TransformIterator",
    "ZipIterator",
    "counting_iterator",
    "make_transform_iterator",
    "SchedulePolicy",
    "FixedPolicy",
    "HeuristicPolicy",
    "PerKernelPolicy",
    "OracleBestPolicy",
    "PolicyError",
    "as_policy",
    "ImbalanceReport",
    "gini",
    "imbalance_report",
    "peak_to_mean",
    "InfiniteRange",
    "StepRange",
    "block_stride_range",
    "grid_stride_range",
    "infinite_range",
    "step_range",
    "warp_stride_range",
    "LaunchParams",
    "Schedule",
    "WorkCosts",
    "available_schedules",
    "make_schedule",
    "register_schedule",
    "BlockMappedSchedule",
    "GroupMappedSchedule",
    "LrbSchedule",
    "MergePathSchedule",
    "NonzeroSplitSchedule",
    "ThreadMappedSchedule",
    "WarpMappedSchedule",
    "merge_path_partition",
    "WorkSpec",
]
