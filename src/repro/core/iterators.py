"""Iterator vocabulary: the first stage of the abstraction (Section 4.1).

The framework requires three iterators from the user -- over work atoms,
over work tiles, and over the number of atoms in each tile (Listing 1).
These mirror the C++ fancy iterators the paper builds on:

* :class:`CountingIterator` -- ``counting_iterator<int>(first)``;
* :class:`TransformIterator` -- ``make_transform_iterator(it, f)``;
* :class:`ConstantIterator`, :class:`ArrayIterator`, :class:`ZipIterator`.

Each iterator supports scalar indexing (the per-thread SIMT path) *and*
vectorized gathers with NumPy index arrays (the corpus-scale path); both
views are tested for agreement.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "CountingIterator",
    "TransformIterator",
    "ConstantIterator",
    "ArrayIterator",
    "ZipIterator",
    "counting_iterator",
    "make_transform_iterator",
]


class CountingIterator:
    """An iterator over the sequence ``first, first+1, first+2, ...``."""

    __slots__ = ("first",)

    def __init__(self, first: int = 0):
        self.first = int(first)

    def __getitem__(self, i):
        if isinstance(i, slice):
            raise TypeError("CountingIterator is unbounded; index with ints/arrays")
        if isinstance(i, np.ndarray):
            return i.astype(np.int64) + self.first
        return self.first + int(i)

    def __add__(self, offset: int) -> "CountingIterator":
        return CountingIterator(self.first + int(offset))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountingIterator(first={self.first})"


class TransformIterator:
    """Applies ``func`` to the values of a base iterator on dereference.

    ``func`` must be NumPy-vectorizable (operate elementwise on arrays) for
    the vectorized path; scalar indexing always works.
    """

    __slots__ = ("base", "func")

    def __init__(self, base, func: Callable):
        self.base = base
        self.func = func

    def __getitem__(self, i):
        return self.func(self.base[i])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TransformIterator({self.base!r})"


class ConstantIterator:
    """Every dereference yields the same value."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __getitem__(self, i):
        if isinstance(i, np.ndarray):
            return np.full(i.shape, self.value)
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantIterator({self.value!r})"


class ArrayIterator:
    """Wraps a NumPy array as an iterator (plain pointer semantics)."""

    __slots__ = ("array",)

    def __init__(self, array):
        self.array = np.asarray(array)

    def __getitem__(self, i):
        return self.array[i]

    def __len__(self) -> int:
        return int(self.array.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayIterator(len={len(self)})"


class ZipIterator:
    """Dereferences to a tuple of the component iterators' values."""

    __slots__ = ("iterators",)

    def __init__(self, *iterators):
        if not iterators:
            raise ValueError("ZipIterator needs at least one component")
        self.iterators = iterators

    def __getitem__(self, i):
        return tuple(it[i] for it in self.iterators)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ZipIterator(arity={len(self.iterators)})"


def counting_iterator(first: int = 0) -> CountingIterator:
    """Factory matching the paper's ``counting_iterator<int>(first)``."""
    return CountingIterator(first)


def make_transform_iterator(base, func: Callable) -> TransformIterator:
    """Factory matching the paper's ``make_transform_iterator`` (Listing 1)."""
    return TransformIterator(base, func)
