"""Schedule protocol: the load-balancing stage (Sections 3.2 and 4.2).

A *schedule* maps sub-sequences of atoms and tiles onto processor ids.
Every schedule in this library implements two coupled views:

**Per-thread view** (the paper's Listing 2 API, used by the SIMT
interpreter and by user-owned kernels):

* ``tiles(ctx)`` -- the range of tiles this thread processes;
* ``atoms(ctx, tile)`` -- the range of atoms of ``tile`` this thread
  processes;
* ``flat_atoms(ctx)`` -- alternative flat stream of ``(tile, atom)`` pairs
  for schedules that parallelize over atoms (Listing 5 consumes
  ``config.atoms()`` + ``config.get_tile(edge)``).

**Planner view** (vectorized, used at corpus scale): ``plan(costs)``
computes, with NumPy only, the cycle cost of every warp in the launch and
folds it into a :class:`~repro.gpusim.cost_model.KernelStats`.  The two
views are cross-validated in the test suite.

The split mirrors the paper's separation of concerns: the *application*
contributes a :class:`WorkCosts` (what one atom / one tile costs), the
*schedule* contributes the assignment, and the *architecture* contributes
the folding rules.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

import numpy as np

from ..gpusim.arch import GpuSpec
from ..gpusim.cost_model import KernelStats, kernel_stats_from_warp_cycles
from .work import WorkSpec

__all__ = [
    "LaunchParams",
    "WorkCosts",
    "Schedule",
    "register_schedule",
    "make_schedule",
    "available_schedules",
    "schedule_description",
]


@dataclass(frozen=True)
class LaunchParams:
    """CUDA launch configuration (the user owns the kernel boundary)."""

    grid_dim: int
    block_dim: int

    def __post_init__(self) -> None:
        if self.grid_dim <= 0 or self.block_dim <= 0:
            raise ValueError("grid_dim and block_dim must be positive")

    @property
    def num_threads(self) -> int:
        return self.grid_dim * self.block_dim


@dataclass(frozen=True)
class WorkCosts:
    """What the *application* charges per unit of balanced work.

    This is the planner-side mirror of the user-defined computation stage:
    schedules are agnostic to what an atom costs; applications declare it
    once and reuse it under every schedule.

    Attributes
    ----------
    atom_cycles:
        Cycles to process one atom in one lane (compute + loads).
    tile_cycles:
        Per-tile overhead (reading extents, writing per-tile output).
    tile_reduction:
        Whether parallel-over-atoms schedules must combine lane partials
        per tile with a group reduction (true for SpMV's dot products,
        false for pure side-effect kernels like SSSP's relaxations).
    atom_atomic:
        Whether each atom performs a global atomic (SSSP/BFS frontier
        updates); charged on top of ``atom_cycles``.
    """

    atom_cycles: float
    tile_cycles: float
    tile_reduction: bool = True
    atom_atomic: bool = False
    #: DRAM traffic per atom / per tile, in bytes.  Drives the bandwidth
    #: floor: a memory-bound kernel cannot run faster than
    #: ``total_bytes / spec.dram_bytes_per_cycle`` no matter how balanced.
    atom_bytes: float = 0.0
    tile_bytes: float = 0.0

    def atom_total(self, spec: GpuSpec) -> float:
        extra = spec.costs.atomic if self.atom_atomic else 0.0
        return self.atom_cycles + spec.costs.loop_overhead + extra


class Schedule(ABC):
    """Base class for load-balancing schedules.

    Subclasses are constructed with the work spec, the device spec and the
    launch parameters (``Schedule(work, spec, launch, **options)``) --
    matching Listing 2, where the schedule object is built inside the
    kernel from the three iterators plus counts.
    """

    #: Registry name, set by :func:`register_schedule`.
    name: str = "?"

    def __init__(self, work: WorkSpec, spec: GpuSpec, launch: LaunchParams):
        self.work = work
        self.spec = spec
        self.launch = launch

    # ------------------------------------------------------------------
    # Per-thread (SIMT) view
    # ------------------------------------------------------------------
    @abstractmethod
    def tiles(self, ctx) -> Iterable[int]:
        """Range of tiles processed by the calling thread."""

    @abstractmethod
    def atoms(self, ctx, tile: int) -> Iterable[int]:
        """Range of atoms of ``tile`` processed by the calling thread."""

    def flat_atoms(self, ctx) -> Iterator[tuple[int, int]]:
        """Flat ``(tile, atom)`` stream; default derives from the nested view."""
        for tile in self.tiles(ctx):
            for atom in self.atoms(ctx, tile):
                yield tile, atom

    def get_tile(self, atom: int) -> int:
        """Map an atom id back to its tile (Listing 5's ``get_tile``)."""
        return int(self.work.tile_of_atom(atom))

    # ------------------------------------------------------------------
    # Planner view
    # ------------------------------------------------------------------
    @abstractmethod
    def warp_cycles(self, costs: WorkCosts) -> np.ndarray:
        """Vectorized per-warp cycle counts, shape (grid_dim, warps/block)."""

    def setup_cycles(self, costs: WorkCosts) -> float:
        """Uniform per-warp setup cost (e.g. merge-path's binary search)."""
        return 0.0

    def bandwidth_floor_cycles(self, costs: WorkCosts) -> float:
        """DRAM-bandwidth lower bound on the kernel body's duration.

        The framework's range bookkeeping issues extra instructions per
        iteration; on a bandwidth-saturated kernel those issue slots
        marginally reduce the *sustained* throughput, so the floor is
        inflated by the abstraction-tax fraction.  Hardwired baselines
        (tax 0) pay the raw floor -- this is the mechanism behind
        Figure 2's small geomean overhead.
        """
        total_bytes = (
            self.work.num_atoms * costs.atom_bytes
            + self.work.num_tiles * costs.tile_bytes
        )
        if total_bytes <= 0:
            return 0.0
        floor = total_bytes / self.spec.dram_bytes_per_cycle
        tax = getattr(self, "abstraction_tax", 0.0)
        if costs.atom_cycles > 0 and tax > 0:
            floor *= 1.0 + tax / (costs.atom_cycles + self.spec.costs.loop_overhead)
        return floor

    def plan(self, costs: WorkCosts, *, extras: dict | None = None) -> KernelStats:
        """Fold the schedule's assignment into kernel statistics."""
        wc = self.warp_cycles(costs)
        useful = self.total_useful_cycles(costs)
        return kernel_stats_from_warp_cycles(
            wc,
            self.launch.grid_dim,
            self.launch.block_dim,
            self.spec,
            total_thread_cycles=useful,
            setup_cycles=self.setup_cycles(costs),
            min_body_cycles=self.bandwidth_floor_cycles(costs),
            extras={"schedule": self.name, **(extras or {})},
        )

    def total_useful_cycles(self, costs: WorkCosts) -> float:
        """Sum of per-atom/per-tile work, independent of the assignment."""
        return (
            self.work.num_atoms * costs.atom_total(self.spec)
            + self.work.num_tiles * costs.tile_cycles
        )

    # ------------------------------------------------------------------
    # Launch sizing
    # ------------------------------------------------------------------
    @staticmethod
    def clamp_block(spec: GpuSpec, block_dim: int) -> int:
        """Clamp a requested block size to the device limit, warp-aligned."""
        clamped = min(block_dim, spec.max_threads_per_block)
        return max(spec.warp_size, clamped - clamped % spec.warp_size)

    @classmethod
    def default_launch(
        cls, work: WorkSpec, spec: GpuSpec, block_dim: int = 256
    ) -> LaunchParams:
        """One thread per tile, grid-sized like Listing 3's launch."""
        block_dim = cls.clamp_block(spec, block_dim)
        grid = max(1, -(-max(1, work.num_tiles) // block_dim))
        return LaunchParams(grid_dim=grid, block_dim=block_dim)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(work={self.work!r}, "
            f"grid={self.launch.grid_dim}, block={self.launch.block_dim})"
        )


# ----------------------------------------------------------------------
# Registry: schedules are selectable by name -- the paper highlights that
# switching schedules is a one-identifier change (Section 6.2).
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[Schedule]] = {}


def register_schedule(name: str) -> Callable[[type[Schedule]], type[Schedule]]:
    """Class decorator adding a schedule to the global registry."""

    def deco(cls: type[Schedule]) -> type[Schedule]:
        if name in _REGISTRY:
            raise ValueError(f"schedule {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def available_schedules() -> list[str]:
    return sorted(_REGISTRY)


def schedule_description(name: str) -> str:
    """One-line description of a registered schedule.

    The first line of the schedule class's docstring -- kept there so the
    description can never drift from the implementation it documents.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown schedule {name!r}; available: {available_schedules()}")
    doc = (_REGISTRY[name].__doc__ or "").strip()
    return doc.splitlines()[0].strip() if doc else ""


def make_schedule(
    name: str,
    work: WorkSpec,
    spec: GpuSpec,
    launch: LaunchParams | None = None,
    **options,
) -> Schedule:
    """Instantiate a registered schedule by name.

    When ``launch`` is omitted, the schedule's own :meth:`default launch
    sizing <Schedule.default_launch>` is used -- subclasses override it to
    match their oversubscription strategy.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown schedule {name!r}; available: {available_schedules()}")
    cls = _REGISTRY[name]
    if launch is None:
        launch = cls.default_launch(work, spec)
    sched = cls(work, spec, launch, **options)
    # Remember the construction options so layers that re-instantiate the
    # schedule on derived workloads (the multi-GPU engine re-scheduling
    # each device shard) reproduce the same configuration instead of
    # silently reverting to defaults.
    sched.construction_options = dict(options)
    return sched
