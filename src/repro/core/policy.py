"""Schedule-selection policies: *how* a schedule is chosen, as a value.

The paper's pitch is that the execution strategy is an identifier switch.
Until now that switch was a loose string threaded through every call site
(``schedule="merge_path"`` / ``schedule="heuristic"``); this module turns
it into a first-class, composable, picklable object so the selection
strategy itself can travel inside an
:class:`~repro.engine.context.ExecutionContext` -- across process-pool
pickle boundaries, into registries, into per-kernel overrides.

Four policies cover the paper's selection modes:

* :class:`FixedPolicy` -- one named schedule everywhere (the per-binary
  behaviour of the original artifact).  Also wraps a pre-built
  :class:`~repro.core.schedule.Schedule` instance.
* :class:`HeuristicPolicy` -- the Section 6.2 alpha/beta selector,
  parameterized by :class:`~repro.core.heuristic.HeuristicParams`.
* :class:`PerKernelPolicy` -- route each *kernel label* of a multi-kernel
  application (SpGEMM's count/compute passes, the traversal apps'
  advance) to its own sub-policy.
* :class:`OracleBestPolicy` -- price every candidate schedule through the
  analytic planner (via the plan cache, when the runtime provides one)
  and pick the cheapest: the paper's "best of all schedules" line as an
  API instead of a harness loop.

Policies *select*; they never execute.  ``select`` returns a registered
schedule name (or a pre-built instance) and the runtime does the rest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Mapping

from ..gpusim.arch import GpuSpec
from ..gpusim.cost_model import KernelStats
from ..sparse.csr import CsrMatrix
from .heuristic import DEFAULT_HEURISTIC, HeuristicParams, select_schedule
from .schedule import (
    LaunchParams,
    Schedule,
    WorkCosts,
    available_schedules,
    make_schedule,
)
from .work import WorkSpec

__all__ = [
    "SchedulePolicy",
    "FixedPolicy",
    "HeuristicPolicy",
    "PerKernelPolicy",
    "OracleBestPolicy",
    "PolicyError",
    "as_policy",
]


class PolicyError(ValueError):
    """Raised when a policy cannot make a selection for a launch."""


#: Signature of the pricing hook a runtime hands to cost-aware policies:
#: ``plan(schedule, costs) -> KernelStats`` (typically the engine's plan
#: cache, so repeated probes of the same launch are free).
Planner = Callable[[Schedule, WorkCosts], KernelStats]

#: Generic probe costs used when a cost-aware policy must select before
#: the application has declared its :class:`WorkCosts` (one coalesced
#: load + one gather + an FMA per atom -- SpMV-shaped, which is the
#: corpus benchmark the schedules were characterized on).
_PROBE_COSTS = WorkCosts(atom_cycles=30.0, tile_cycles=8.0)


class SchedulePolicy(ABC):
    """One strategy for choosing a schedule per launch.

    ``select`` receives everything the runtime knows about the launch --
    the workload, the device, the input matrix (when the driver has one),
    the kernel label of multi-kernel applications, the declared costs and
    a pricing hook -- and returns a registered schedule *name* (or a
    pre-built :class:`Schedule` instance, which the runtime uses as-is).
    """

    @abstractmethod
    def select(
        self,
        work: WorkSpec,
        spec: GpuSpec,
        *,
        matrix: CsrMatrix | None = None,
        kernel: str | None = None,
        costs: WorkCosts | None = None,
        launch: LaunchParams | None = None,
        plan: Planner | None = None,
        schedule_options: Mapping | None = None,
    ) -> str | Schedule:
        """Choose the schedule for one launch."""

    def cache_token(self) -> tuple | None:
        """Hashable identity for plan-cache keys (``None`` = uncacheable)."""
        return None

    def describe(self) -> str:
        """Short label for reports and CSV rows."""
        return type(self).__name__


@dataclass(frozen=True)
class FixedPolicy(SchedulePolicy):
    """Always the same schedule: a name, or a pre-built instance."""

    schedule: str | Schedule

    def select(self, work, spec, *, matrix=None, kernel=None, costs=None,
               launch=None, plan=None, schedule_options=None):
        return self.schedule

    def cache_token(self):
        # Pre-built instances may carry options the key cannot observe.
        if not isinstance(self.schedule, str):
            return None
        return ("fixed", self.schedule)

    def describe(self):
        return (
            self.schedule if isinstance(self.schedule, str)
            else self.schedule.name
        )


@dataclass(frozen=True)
class HeuristicPolicy(SchedulePolicy):
    """The Section 6.2 alpha/beta selector, per matrix.

    ``params=None`` defers to a ``heuristic=HeuristicParams(...)`` entry
    in the runtime's schedule options (the legacy spelling), falling back
    to :data:`~repro.core.heuristic.DEFAULT_HEURISTIC`.
    """

    params: HeuristicParams | None = None

    def select(self, work, spec, *, matrix=None, kernel=None, costs=None,
               launch=None, plan=None, schedule_options=None):
        if matrix is None:
            raise PolicyError(
                "the heuristic policy requires the input matrix "
                "(schedule='heuristic' requires the input matrix)"
            )
        params = self.params
        if params is None:
            params = (schedule_options or {}).get("heuristic") or DEFAULT_HEURISTIC
        return select_schedule(matrix, params)

    def cache_token(self):
        return ("heuristic", self.params)

    def describe(self):
        return "heuristic"


@dataclass(frozen=True)
class PerKernelPolicy(SchedulePolicy):
    """Route each kernel label of a multi-kernel app to its own policy.

    Keys are the kernel labels drivers pass to
    ``runtime.schedule_for(..., kernel=...)`` -- e.g. SpGEMM's ``count``
    and ``compute``, the traversal apps' ``advance``.  Values are
    policies or anything :func:`as_policy` accepts (a schedule name,
    ``"heuristic"``, ``"oracle_best"``).  Unlisted kernels use
    ``default`` when given, else selection fails loudly.
    """

    policies: tuple = ()
    default: SchedulePolicy | None = None

    def __init__(self, policies, default=None):
        items = policies.items() if isinstance(policies, Mapping) else policies
        normalized = tuple(
            sorted(((str(k), as_policy(v)) for k, v in items),
                   key=lambda kv: kv[0])
        )
        object.__setattr__(self, "policies", normalized)
        object.__setattr__(
            self, "default", as_policy(default) if default is not None else None
        )

    def _lookup(self, kernel: str | None) -> SchedulePolicy:
        for name, sub in self.policies:
            if name == kernel:
                return sub
        if self.default is not None:
            return self.default
        known = tuple(name for name, _ in self.policies)
        raise PolicyError(
            f"PerKernelPolicy has no entry for kernel {kernel!r} and no "
            f"default (known kernels: {known})"
        )

    def select(self, work, spec, *, matrix=None, kernel=None, costs=None,
               launch=None, plan=None, schedule_options=None):
        return self._lookup(kernel).select(
            work, spec, matrix=matrix, kernel=kernel, costs=costs,
            launch=launch, plan=plan, schedule_options=schedule_options,
        )

    def cache_token(self):
        tokens = []
        for name, sub in self.policies:
            token = sub.cache_token()
            if token is None:
                return None
            tokens.append((name, token))
        default_token = None
        if self.default is not None:
            default_token = self.default.cache_token()
            if default_token is None:
                return None
        return ("per_kernel", tuple(tokens), default_token)

    def describe(self):
        return "per_kernel(" + ", ".join(
            f"{name}={sub.describe()}" for name, sub in self.policies
        ) + ")"


@dataclass(frozen=True)
class OracleBestPolicy(SchedulePolicy):
    """Price every candidate schedule; pick the cheapest (oracle best).

    The paper's "best of all schedules" harness loop as a policy: each
    candidate is instantiated on the launch's workload, priced through
    the analytic planner (via the runtime's plan cache when available --
    repeated probes of an identical launch are free), and the minimum
    ``elapsed_ms`` wins.  Ties break lexicographically so the selection
    is deterministic.  Candidates that cannot be constructed or planned
    on a given workload are skipped.

    ``candidates=None`` means every registered schedule.
    """

    candidates: tuple[str, ...] | None = None

    def select(self, work, spec, *, matrix=None, kernel=None, costs=None,
               launch=None, plan=None, schedule_options=None):
        names = self.candidates or tuple(available_schedules())
        price_costs = costs if costs is not None else _PROBE_COSTS
        options = dict(schedule_options or {})
        options.pop("heuristic", None)
        best_name: str | None = None
        best_ms = float("inf")
        failures: list[str] = []
        for name in sorted(names):
            try:
                sched = make_schedule(name, work, spec, launch, **options)
                stats = (
                    plan(sched, price_costs) if plan is not None
                    else sched.plan(price_costs)
                )
            except Exception as exc:  # unschedulable candidate: skip
                failures.append(f"{name}: {exc}")
                continue
            if stats.elapsed_ms < best_ms:
                best_name, best_ms = name, stats.elapsed_ms
        if best_name is None:
            raise PolicyError(
                f"no candidate schedule could be planned for {work!r} "
                f"({'; '.join(failures)})"
            )
        return best_name

    def cache_token(self):
        return ("oracle_best", self.candidates)

    def describe(self):
        return "oracle_best"


def as_policy(selection) -> SchedulePolicy:
    """Coerce any schedule selection into a :class:`SchedulePolicy`.

    Accepts a policy (returned unchanged), a registered schedule name,
    the strings ``"heuristic"`` / ``"oracle_best"``, or a pre-built
    :class:`Schedule` instance.
    """
    if isinstance(selection, SchedulePolicy):
        return selection
    if isinstance(selection, Schedule):
        return FixedPolicy(selection)
    if isinstance(selection, str):
        if selection == "heuristic":
            return HeuristicPolicy()
        if selection == "oracle_best":
            return OracleBestPolicy()
        return FixedPolicy(selection)
    raise TypeError(
        f"cannot interpret {selection!r} as a schedule policy; expected a "
        "SchedulePolicy, a schedule name, 'heuristic', 'oracle_best', or a "
        "Schedule instance"
    )
