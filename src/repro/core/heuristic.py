"""Schedule-selection heuristic (Section 6.2).

The paper's combined SpMV picks a schedule per matrix with a simple rule:

    "we use merge-path unless either the number of rows or columns are
     less than the threshold alpha and the nonzeros of a given matrix are
     less than threshold beta (we choose alpha = 500 and beta = 10000 for
     SuiteSparse).  In this case, we use thread-mapped or group-mapped
     load balancing instead of merge-path."

Within the small-matrix branch we dispatch between thread-mapped (when
rows are near-uniformly tiny -- e.g. sparse vectors, where per-thread
scheduling has zero overhead) and group-mapped (when small rows are
uneven enough that lockstep skew would bite), mirroring how Figure 3's
regimes separate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sparse.csr import CsrMatrix

__all__ = ["HeuristicParams", "select_schedule", "DEFAULT_HEURISTIC"]


@dataclass(frozen=True)
class HeuristicParams:
    """Thresholds of the Section 6.2 selector."""

    alpha: int = 500  # row/column threshold
    beta: int = 10000  # nnz threshold
    #: Mean atoms-per-tile below which the small-matrix branch prefers the
    #: zero-overhead thread-mapped schedule over group-mapped.
    uniform_mean_cutoff: float = 4.0
    #: Degree coefficient-of-variation above which even small matrices are
    #: considered skewed enough for group-mapped.
    uniform_cv_cutoff: float = 0.5


DEFAULT_HEURISTIC = HeuristicParams()


def select_schedule(
    matrix: CsrMatrix, params: HeuristicParams = DEFAULT_HEURISTIC
) -> str:
    """Choose a schedule name for one matrix, per the paper's heuristic."""
    rows, cols = matrix.shape
    nnz = matrix.nnz
    small_shape = rows < params.alpha or cols < params.alpha
    if not (small_shape and nnz < params.beta):
        return "merge_path"
    stats = matrix.degree_stats()
    if (
        stats["mean"] <= params.uniform_mean_cutoff
        and stats["cv"] <= params.uniform_cv_cutoff
    ) or cols == 1:
        return "thread_mapped"
    return "group_mapped"
