"""repro: a Python reproduction of "A Programming Model for GPU Load
Balancing" (Osama, Porumbescu & Owens, PPoPP 2023) on a simulated GPU.

Quickstart::

    from repro import spmv, load_dataset

    dataset = load_dataset("power_a19")
    import numpy as np
    x = np.ones(dataset.cols)
    result = spmv(dataset.matrix, x, schedule="merge_path")
    print(result.elapsed_ms, result.stats.simt_efficiency)

Packages:

* :mod:`repro.gpusim` -- the simulated-GPU substrate (SIMT interpreter +
  analytic cost model);
* :mod:`repro.sparse` -- CSR/CSC/COO formats, MatrixMarket IO, corpus;
* :mod:`repro.core` -- the load-balancing abstraction (iterators, ranges,
  work specs, schedules, heuristic);
* :mod:`repro.engine` -- the unified execution layer (app registry,
  vector/SIMT engine dispatch, plan cache, deterministic seeding);
* :mod:`repro.apps` -- SpMV/SpMM/SpGEMM, BFS/SSSP, PageRank, triangles;
* :mod:`repro.baselines` -- hardwired CUB and vendor-model comparators;
* :mod:`repro.evaluation` -- the harness for every table and figure.
"""

from .apps import bfs, pagerank, spgemm, spmm, spmv, sssp, triangle_count
from .core import (
    LaunchParams,
    Schedule,
    WorkCosts,
    WorkSpec,
    available_schedules,
    make_schedule,
    select_schedule,
)
from .engine import available_apps, get_app, run_app
from .gpusim import AMD_WARP64, TINY_GPU, V100, GpuSpec, KernelStats
from .sparse import (
    CooMatrix,
    CscMatrix,
    CsrGraph,
    CsrMatrix,
    build_corpus,
    load_dataset,
    random_graph,
    read_mtx,
    write_mtx,
)

__version__ = "1.0.0"

__all__ = [
    "bfs",
    "pagerank",
    "spgemm",
    "spmm",
    "spmv",
    "sssp",
    "triangle_count",
    "LaunchParams",
    "Schedule",
    "WorkCosts",
    "WorkSpec",
    "available_schedules",
    "make_schedule",
    "select_schedule",
    "available_apps",
    "get_app",
    "run_app",
    "AMD_WARP64",
    "TINY_GPU",
    "V100",
    "GpuSpec",
    "KernelStats",
    "CooMatrix",
    "CscMatrix",
    "CsrGraph",
    "CsrMatrix",
    "build_corpus",
    "load_dataset",
    "random_graph",
    "read_mtx",
    "write_mtx",
    "__version__",
]
