"""``repro serve`` -- the long-running multi-tenant sweep service.

Everything PRs 4-7 cached (warm worker slots, sticky HRW placement, shm
dataset bundles, shared oracle payloads, journaled plans) only pays off
*inside one process*.  This module is that process: an asyncio TCP
front-end (JSON lines, :mod:`repro.service.protocol`) over one
persistent :class:`~repro.engine.worker_pool.SweepExecutor`, so many
clients hit the same warm instance instead of each paying the cold
start.

Design:

* **Jobs, not requests.**  A ``submit`` names an app, kernels and
  datasets; the server expands it into per-dataset *units* (the same
  shard granularity the worker pool batches) and streams each unit's
  :class:`~repro.evaluation.harness.SweepRow` results back as they
  complete -- a client sees its first rows while later datasets are
  still queued.
* **Bounded admission + backpressure.**  At most ``queue_depth``
  (``REPRO_SERVE_QUEUE_DEPTH``) jobs may be pending; past that,
  ``submit`` answers an explicit ``rejected/queue_full`` instead of
  buffering unboundedly.  Rejection is cheap and immediate -- clients
  retry with backoff.
* **Per-client round-robin fairness.**  The dispatcher rotates over
  clients one *unit* at a time, so a tenant with a 100-dataset job
  cannot starve one with a single dataset: the small job's units
  interleave and finish first.
* **Failure isolation.**  A unit that dies (worker crash, validation
  failure) becomes a ``row_error`` message and a failed row in the
  journal; the job's remaining units still run, the pool respawns the
  dead slot, and the client gets a ``done`` with ``status:"partial"``
  instead of a hang.
* **Crash-safe results journal.**  Every accepted job, streamed row and
  completion is appended to a :class:`~repro.service.journal.
  ResultsJournal` (the plan store's CRC framing), so a kill -9 loses at
  most the record being written.
* **Graceful drain.**  SIGTERM/SIGINT (or :meth:`SweepService.
  begin_drain`) stops admission (``rejected/draining``), finishes every
  in-flight job, then shuts the executor down -- unlinking all shm
  dataset blocks and the shared-oracle directory -- before exiting.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..engine.context import ExecutionContext
from ..faults import faults_active, inject
from ..engine.worker_pool import TRANSPORTS, SweepExecutor
from ..evaluation.harness import expand_datasets, run_suite
from ..sparse.corpus import Dataset
from .journal import ResultsJournal
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    row_to_wire,
)

__all__ = [
    "SweepService",
    "SERVE_QUEUE_DEPTH_ENV",
    "SERVE_WIDTH_ENV",
    "SERVE_JOB_TIMEOUT_ENV",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_JOB_TIMEOUT",
]

#: Bounded job-queue depth (pending = accepted, not yet done); past it,
#: submissions are rejected with ``queue_full``.
SERVE_QUEUE_DEPTH_ENV = "REPRO_SERVE_QUEUE_DEPTH"

#: Default worker-pool width for ``repro serve`` when ``--width`` is not
#: given (``0`` = serial in-process execution, no pool).
SERVE_WIDTH_ENV = "REPRO_SERVE_WIDTH"

DEFAULT_QUEUE_DEPTH = 16

#: Wall-clock deadline for one accepted job, start of execution to
#: ``done`` (``0`` disables).  A job past it stops consuming units and
#: finishes with ``status:"timeout"`` -- bounded-time failure, not a
#: hung stream.
SERVE_JOB_TIMEOUT_ENV = "REPRO_SERVE_JOB_TIMEOUT"
DEFAULT_JOB_TIMEOUT = 600.0


def _job_timeout_from_env() -> float:
    raw = os.environ.get(SERVE_JOB_TIMEOUT_ENV)
    if not raw:
        return DEFAULT_JOB_TIMEOUT
    try:
        return float(raw)
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring non-numeric {SERVE_JOB_TIMEOUT_ENV}={raw!r}; "
            f"using the default job deadline",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_JOB_TIMEOUT


def _queue_depth_from_env() -> int:
    """The admission bound from the environment knob.

    A malformed value warns and falls back to the default -- a tuning
    typo must degrade to the stock bound, never crash the daemon (same
    contract as the cache budgets).
    """
    raw = os.environ.get(SERVE_QUEUE_DEPTH_ENV)
    if not raw:
        return DEFAULT_QUEUE_DEPTH
    try:
        return int(raw)
    except ValueError:
        import warnings

        warnings.warn(
            f"ignoring non-integer {SERVE_QUEUE_DEPTH_ENV}={raw!r}; "
            f"using the default queue depth",
            RuntimeWarning,
            stacklevel=3,
        )
        return DEFAULT_QUEUE_DEPTH


@dataclass(eq=False)
class _Job:
    """One admitted sweep job, expanded into per-dataset units."""

    job_id: str
    spec: dict  # the sanitized submission (journaled for replay)
    app: str
    kernels: tuple
    seed: int
    validate: bool
    ctx: ExecutionContext
    units: deque  # Dataset instances still to run
    total_units: int
    rows_streamed: int = 0
    failed_units: int = 0
    #: Absolute monotonic deadline (set at admission; ``None`` = none).
    deadline: float | None = None
    timed_out: bool = False


@dataclass(eq=False)
class _ClientState:
    """Server-side connection state for one client."""

    client_id: str
    writer: Any
    jobs: deque = field(default_factory=deque)
    closed: bool = False
    #: True while this client sits in the dispatcher's round-robin ring
    #: (kept exactly in sync to avoid double entries).
    scheduled: bool = False
    write_lock: Any = None


class SweepService:
    """The sweep daemon: one warm executor stack, many clients.

    ``width`` selects the execution mode: ``0`` runs every unit serially
    in-process (no worker pool -- deterministic and spawn-free, the
    test/bench fast path), ``None`` or ``N >= 1`` owns a persistent
    :class:`~repro.engine.worker_pool.SweepExecutor` of that width whose
    caches all jobs share.  Pass ``executor=`` to serve over a pool you
    manage yourself (it will not be shut down on drain).

    Run it with :meth:`serve` (asyncio; the CLI path installs
    SIGTERM/SIGINT drain handlers) or :meth:`start_background` (own
    thread + loop; tests, benches and embedders).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        width: int | None = None,
        queue_depth: int | None = None,
        journal_path: str | None = None,
        transport: str = "auto",
        plan_store: str | None = None,
        executor: SweepExecutor | None = None,
        job_timeout: float | None = None,
    ):
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORTS}"
            )
        if width is not None and width < 0:
            raise ValueError(f"width must be >= 0, got {width}")
        self.host = host
        self.port = port
        self.width = width
        self.queue_depth = (
            _queue_depth_from_env() if queue_depth is None else int(queue_depth)
        )
        self.job_timeout = (
            _job_timeout_from_env() if job_timeout is None
            else float(job_timeout)
        )
        self.transport = transport
        self.plan_store = None if plan_store is None else str(plan_store)
        self._journal = (
            None if journal_path is None else ResultsJournal(journal_path)
        )
        self._owns_pool = executor is None and (width is None or width >= 1)
        if executor is not None:
            self._pool: SweepExecutor | None = executor
        elif self._owns_pool:
            self._pool = SweepExecutor(
                max_workers=width, transport=transport
            )
        else:  # width == 0: serial in-process execution
            self._pool = None
        self._clients: set[_ClientState] = set()
        self._conn_tasks: set = set()
        self._rr: deque[_ClientState] = deque()
        self._pending = 0
        self._draining = False
        self._job_ids = itertools.count(1)
        self._client_ids = itertools.count(1)
        self._job_prefix = f"j{os.getpid():x}"
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._thread_error: BaseException | None = None
        self.jobs_accepted = 0
        self.jobs_rejected = 0
        self.jobs_done = 0
        self.jobs_timed_out = 0
        self.rows_streamed = 0
        self.journal_errors = 0
        self._journal_error_warned = False
        #: Job ids currently executing a unit (the ``status`` gauge).
        self._in_flight: set[str] = set()

    # ------------------------------------------------------------------
    # Job admission
    # ------------------------------------------------------------------
    def _build_job(self, spec: dict) -> _Job:
        """Validate one submission and expand it into dataset units.

        Raises ``ValueError``/``KeyError`` with a client-presentable
        message on anything malformed; admission turns that into a
        ``rejected/bad_request`` answer.
        """
        if not isinstance(spec, dict):
            raise ValueError("job must be a JSON object")
        app = str(spec.get("app", "spmv"))
        kernels = spec.get("kernels") or ["merge_path"]
        if not isinstance(kernels, (list, tuple)) or not all(
            isinstance(k, str) for k in kernels
        ):
            raise ValueError("job kernels must be a list of kernel names")
        scale = str(spec.get("scale", "smoke"))
        limit = spec.get("limit")
        if limit is not None:
            limit = int(limit)
        names = spec.get("datasets")
        if names is not None and (
            not isinstance(names, (list, tuple))
            or not all(isinstance(n, str) for n in names)
        ):
            raise ValueError("job datasets must be a list of dataset names")
        seed = spec.get("seed")
        validate = bool(spec.get("validate", True))
        engine = str(spec.get("engine", "vector"))
        gpus = int(spec.get("gpus", 1))

        from ..core.schedule import available_schedules
        from ..engine import DEFAULT_SEED, get_app
        from ..engine.dispatch import ensure_known_engine
        from ..evaluation.harness import POLICY_KERNELS

        app_spec = get_app(app)  # raises KeyError on unknown apps
        known = set(available_schedules()) | set(POLICY_KERNELS)
        known |= set(app_spec.baselines)
        for kernel in kernels:
            if kernel not in known:
                raise ValueError(
                    f"unknown kernel {kernel!r} for app {app!r}"
                )
        ensure_known_engine(engine)
        datasets = expand_datasets(
            app, scale=scale, limit=limit, names=list(names) if names else None
        )
        ctx = ExecutionContext(
            engine=engine, gpus=gpus, plan_store=self.plan_store
        )
        job_id = f"{self._job_prefix}-{next(self._job_ids)}"
        sanitized = {
            "app": app,
            "kernels": list(kernels),
            "scale": scale,
            "limit": limit,
            "datasets": names if names is None else list(names),
            "seed": seed,
            "validate": validate,
            "engine": engine,
            "gpus": gpus,
        }
        return _Job(
            job_id=job_id,
            spec=sanitized,
            app=app,
            kernels=tuple(kernels),
            seed=DEFAULT_SEED if seed is None else int(seed),
            validate=validate,
            ctx=ctx,
            units=deque(datasets),
            total_units=len(datasets),
        )

    def _admit(self, client: _ClientState, spec: dict) -> dict:
        """Admission control: the bounded queue and the drain gate."""
        if self._draining:
            self.jobs_rejected += 1
            return {"type": "rejected", "reason": "draining"}
        if self._pending >= self.queue_depth:
            self.jobs_rejected += 1
            return {
                "type": "rejected",
                "reason": "queue_full",
                "queue_depth": self.queue_depth,
                "pending": self._pending,
            }
        try:
            job = self._build_job(spec)
        except Exception as exc:
            self.jobs_rejected += 1
            return {
                "type": "rejected",
                "reason": "bad_request",
                "error": f"{exc}",
            }
        if self.job_timeout > 0:
            job.deadline = time.monotonic() + self.job_timeout
        client.jobs.append(job)
        self._pending += 1
        self.jobs_accepted += 1
        self._journal_event({
            "event": "job",
            "job_id": job.job_id,
            "client": client.client_id,
            "spec": job.spec,
        })
        if not client.scheduled:
            client.scheduled = True
            self._rr.append(client)
        if self._wake is not None:
            self._wake.set()
        return {
            "type": "accepted",
            "job_id": job.job_id,
            "units": job.total_units,
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_unit(self, job: _Job, dataset: Dataset) -> list:
        """Run one dataset unit of a job (called from a worker thread).

        The bridge from service jobs to the evaluation harness: every
        unit is a plain :func:`~repro.evaluation.harness.run_suite` call
        over a one-dataset list, through the shared persistent pool when
        the service owns one -- so rows are bit-identical to a direct
        library call and inherit every warm-path cache.
        """
        inject("serve.dispatch")
        if self._pool is None:
            return run_suite(
                job.kernels,
                app=job.app,
                datasets=[dataset],
                seed=job.seed,
                validate=job.validate,
                executor="serial",
                ctx=job.ctx,
            )
        return run_suite(
            job.kernels,
            app=job.app,
            datasets=[dataset],
            seed=job.seed,
            validate=job.validate,
            executor="process",
            pool=self._pool,
            transport=self.transport,
            ctx=job.ctx,
        )

    async def _dispatch(self) -> None:
        """The fairness loop: one unit per client per rotation."""
        assert self._wake is not None and self._stopped is not None
        while True:
            if not self._rr:
                if self._draining and self._pending == 0:
                    break
                self._wake.clear()
                # Re-check under the cleared flag: a submit between the
                # check above and clear() would otherwise be lost.
                if not self._rr and not (
                    self._draining and self._pending == 0
                ):
                    await self._wake.wait()
                continue
            client = self._rr.popleft()
            client.scheduled = False
            if client.closed:
                self._drop_jobs(client)
                continue
            job = client.jobs[0]
            if job.units:
                dataset = job.units.popleft()
                await self._run_one_unit(client, job, dataset)
            if client.closed:
                self._drop_jobs(client)
                continue
            if job.timed_out:
                # The deadline fell mid-job: every remaining unit fails
                # immediately (bounded time beats completeness here).
                await self._flush_timed_out_units(client, job)
            if not job.units:
                self._finish_job(client, job)
                await self._send(client, {
                    "type": "done",
                    "job_id": job.job_id,
                    "rows": job.rows_streamed,
                    "failed": job.failed_units,
                    "status": self._job_status(job),
                })
            if client.jobs and not client.scheduled:
                client.scheduled = True
                self._rr.append(client)
            if self._draining and self._pending == 0 and not self._rr:
                break
        self._stopped.set()

    @staticmethod
    def _job_status(job: _Job) -> str:
        if job.timed_out:
            return "timeout"
        return "partial" if job.failed_units else "ok"

    async def _flush_timed_out_units(
        self, client: _ClientState, job: _Job
    ) -> None:
        """Fail every not-yet-run unit of a job past its deadline."""
        while job.units:
            dataset = job.units.popleft()
            job.failed_units += 1
            event = {
                "event": "row_error",
                "job_id": job.job_id,
                "dataset": dataset.name,
                "error": "job deadline exceeded",
            }
            self._journal_event(event)
            await self._send(client, {"type": "row_error", **{
                k: v for k, v in event.items() if k != "event"
            }, "status": "timeout"})

    async def _run_one_unit(
        self, client: _ClientState, job: _Job, dataset: Dataset
    ) -> None:
        remaining: float | None = None
        if job.deadline is not None:
            remaining = job.deadline - time.monotonic()
            if remaining <= 0:
                job.timed_out = True
                self.jobs_timed_out += 1
                job.units.appendleft(dataset)  # flushed with the rest
                return
        self._in_flight.add(job.job_id)
        try:
            coro = asyncio.to_thread(self._execute_unit, job, dataset)
            if remaining is None:
                rows = await coro
            else:
                # The abandoned thread keeps running to completion in the
                # background (to_thread cannot be killed), but the job
                # stops waiting: its stream stays bounded in time.
                rows = await asyncio.wait_for(coro, timeout=remaining)
        except (TimeoutError, asyncio.TimeoutError):
            job.timed_out = True
            self.jobs_timed_out += 1
            job.failed_units += 1
            error = f"job deadline exceeded ({self.job_timeout:g}s)"
            self._journal_event({
                "event": "row_error",
                "job_id": job.job_id,
                "dataset": dataset.name,
                "error": error,
            })
            await self._send(client, {
                "type": "row_error",
                "job_id": job.job_id,
                "dataset": dataset.name,
                "error": error,
                "status": "timeout",
            })
            return
        except BaseException as exc:
            if isinstance(exc, asyncio.CancelledError):
                raise
            # A worker crash (BrokenProcessPool), validation failure or
            # engine error kills this unit only: the client gets an
            # explicit failed row instead of a hung stream, and the next
            # sweep through the pool respawns any dead slot.
            job.failed_units += 1
            error = f"{type(exc).__name__}: {exc}"
            self._journal_event({
                "event": "row_error",
                "job_id": job.job_id,
                "dataset": dataset.name,
                "error": error,
            })
            await self._send(client, {
                "type": "row_error",
                "job_id": job.job_id,
                "dataset": dataset.name,
                "error": error,
            })
            return
        finally:
            self._in_flight.discard(job.job_id)
        for row in rows:
            wire = row_to_wire(row)
            job.rows_streamed += 1
            self.rows_streamed += 1
            self._journal_event({
                "event": "row",
                "job_id": job.job_id,
                "seq": job.rows_streamed,
                "row": wire,
            })
            await self._send(client, {
                "type": "row",
                "job_id": job.job_id,
                "seq": job.rows_streamed,
                "row": wire,
            })

    def _finish_job(self, client: _ClientState, job: _Job) -> None:
        client.jobs.popleft()
        self._pending -= 1
        self.jobs_done += 1
        self._journal_event({
            "event": "done",
            "job_id": job.job_id,
            "rows": job.rows_streamed,
            "failed": job.failed_units,
            "status": self._job_status(job),
        })

    def _drop_jobs(self, client: _ClientState) -> None:
        """Abandon a disconnected client's jobs (results have no reader)."""
        while client.jobs:
            job = client.jobs.popleft()
            self._pending -= 1
            self._journal_event({"event": "abandoned", "job_id": job.job_id})

    def _journal_event(self, event: dict) -> None:
        """Append one event; a journal failure costs the *record*, never
        the job -- results still stream, and the miss is counted."""
        if self._journal is None:
            return
        try:
            inject("serve.journal")
            self._journal.append(event)
        except Exception as exc:
            self.journal_errors += 1
            if not self._journal_error_warned:
                self._journal_error_warned = True
                import warnings

                warnings.warn(
                    f"results-journal append failed "
                    f"({type(exc).__name__}: {exc}); job results still "
                    f"stream but this event was not journaled",
                    RuntimeWarning,
                    stacklevel=3,
                )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(self, client: _ClientState, message: dict) -> None:
        if client.closed:
            return
        if inject("serve.connection") == "drop":
            # Simulate the peer vanishing mid-stream: the writer closes
            # and the dispatcher's closed-client path abandons the jobs.
            client.closed = True
            with contextlib.suppress(Exception):
                client.writer.close()
            return
        data = encode_message(message)
        async with client.write_lock:
            try:
                client.writer.write(data)
                await client.writer.drain()
            except (ConnectionError, OSError):
                client.closed = True

    async def _handle_client(self, reader, writer) -> None:
        client = _ClientState(
            client_id=f"c{next(self._client_ids)}",
            writer=writer,
            write_lock=asyncio.Lock(),
        )
        self._clients.add(client)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        await self._send(client, {
            "type": "hello",
            "version": PROTOCOL_VERSION,
            "server": "repro-serve",
            "client_id": client.client_id,
        })
        try:
            while not client.closed:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = decode_message(line)
                except ProtocolError as exc:
                    await self._send(client, {"type": "error", "error": str(exc)})
                    continue
                op = message.get("op")
                if op == "ping":
                    await self._send(client, {"type": "pong"})
                elif op == "info":
                    await self._send(client, {"type": "info", "info": self.info()})
                elif op == "status":
                    await self._send(
                        client, {"type": "status", **self.status()}
                    )
                elif op == "submit":
                    response = self._admit(client, message.get("job") or {})
                    await self._send(client, response)
                else:
                    await self._send(client, {
                        "type": "error",
                        "error": f"unknown op {op!r}",
                    })
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Teardown cancels handler tasks; end them quietly -- older
            # 3.11s log any handler task that finishes cancelled.
            pass
        finally:
            client.closed = True
            self._clients.discard(client)
            if task is not None:
                self._conn_tasks.discard(task)
            if self._wake is not None:
                self._wake.set()  # let the dispatcher drop abandoned jobs
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admission, finish in-flight jobs, then shut down.

        Safe to call from a signal handler on the service's loop; from
        another thread use :meth:`request_drain`.
        """
        self._draining = True
        if self._wake is not None:
            self._wake.set()

    async def serve(
        self, *, install_signals: bool = False, on_ready=None
    ) -> None:
        """Run the service until drained (the daemon main loop).

        ``install_signals=True`` (the CLI path) turns SIGTERM/SIGINT
        into :meth:`begin_drain`; ``on_ready`` is called with the
        service once the listener is bound (the daemon announces its
        port there -- required for ``--port 0``).
        """
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(
                    NotImplementedError, ValueError, RuntimeError
                ):
                    self._loop.add_signal_handler(sig, self.begin_drain)
        dispatcher = asyncio.create_task(self._dispatch())
        self._ready.set()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stopped.wait()
        finally:
            server.close()
            await server.wait_closed()
            for client in list(self._clients):
                client.closed = True
                with contextlib.suppress(Exception):
                    client.writer.close()
            for conn_task in list(self._conn_tasks):
                conn_task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            if not dispatcher.done():
                dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await dispatcher
            self._shutdown_resources()

    def _shutdown_resources(self) -> None:
        """Drain epilogue: unlink every shm segment, close the journal."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
        if self._journal is not None:
            self._journal.close()

    # -- background-thread embedding (tests, benches, notebooks) --------
    def start_background(self) -> None:
        """Run :meth:`serve` on a dedicated thread with its own loop."""
        if self._thread is not None:
            raise RuntimeError("service already started")

        def _main() -> None:
            try:
                asyncio.run(self.serve())
            except BaseException as exc:  # surfaced by join()
                self._thread_error = exc
                self._ready.set()

        self._thread = threading.Thread(
            target=_main, name="repro-serve", daemon=True
        )
        self._thread.start()

    def wait_ready(self, timeout: float = 30.0) -> tuple[str, int]:
        """Block until the listener is bound; returns ``(host, port)``.

        On timeout the background thread is drained (releasing any port
        it did manage to bind) before ``TimeoutError`` is raised, so a
        failed startup never leaks a listener.
        """
        if not self._ready.wait(timeout):
            self.request_drain()
            if self._thread is not None:
                self._thread.join(5.0)
            raise TimeoutError("sweep service did not come up in time")
        if self._thread_error is not None:
            raise RuntimeError(
                f"sweep service failed to start: {self._thread_error!r}"
            ) from self._thread_error
        return self.host, self.port

    def request_drain(self) -> None:
        """Thread-safe :meth:`begin_drain` (for embedders and tests)."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.begin_drain)
        else:
            self.begin_drain()

    def join(self, timeout: float = 120.0) -> None:
        """Wait for a backgrounded service to finish draining.

        On timeout a drain is (re)requested and the thread given one
        short grace period; if it still will not die, ``TimeoutError``
        carries that fact instead of the caller hanging forever.
        """
        if self._thread is None:
            return
        self._thread.join(timeout)
        if self._thread.is_alive():
            self.request_drain()
            self._thread.join(5.0)
        if self._thread.is_alive():
            raise TimeoutError("sweep service did not drain in time")
        if self._thread_error is not None:
            raise RuntimeError(
                f"sweep service died: {self._thread_error!r}"
            ) from self._thread_error

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def info(self) -> dict:
        executor = (
            {"mode": "serial"} if self._pool is None
            else {"mode": "pool", **self._pool.info()}
        )
        return {
            "version": PROTOCOL_VERSION,
            "host": self.host,
            "port": self.port,
            "queue_depth": self.queue_depth,
            "pending": self._pending,
            "in_flight": len(self._in_flight),
            "draining": self._draining,
            "clients": len(self._clients),
            "job_timeout": self.job_timeout,
            "jobs_accepted": self.jobs_accepted,
            "jobs_rejected": self.jobs_rejected,
            "jobs_done": self.jobs_done,
            "jobs_timed_out": self.jobs_timed_out,
            "rows_streamed": self.rows_streamed,
            "journal_errors": self.journal_errors,
            "transport": self.transport,
            "journal": None if self._journal is None else str(self._journal.path),
            "executor": executor,
        }

    def status(self) -> dict:
        """The liveness probe: queue/fault/retry gauges in one message.

        Unlike :meth:`info` (static configuration + lifetime totals),
        ``status`` is what an operator polls during an incident: current
        queue depth, which jobs are actually executing, and every
        degradation counter the executor and fault registry keep.
        """
        pool = self._pool.info() if self._pool is not None else {}
        return {
            "queue_depth": self.queue_depth,
            "pending": self._pending,
            "in_flight": sorted(self._in_flight),
            "width": pool.get("width", 0),
            "draining": self._draining,
            "clients": len(self._clients),
            "jobs": {
                "accepted": self.jobs_accepted,
                "done": self.jobs_done,
                "rejected": self.jobs_rejected,
                "timed_out": self.jobs_timed_out,
            },
            "rows_streamed": self.rows_streamed,
            "journal_errors": self.journal_errors,
            "retries": {
                "batch_timeouts": pool.get("batch_timeouts", 0),
                "batch_retries": pool.get("batch_retries", 0),
                "degraded_shards": pool.get("degraded_shards", 0),
                "error_rows": pool.get("error_rows", 0),
                "transport_fallbacks": pool.get("transport_fallbacks", 0),
            },
            "faults": faults_active(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SweepService({self.host}:{self.port}, "
            f"pending={self._pending}, done={self.jobs_done})"
        )
