"""Client library for the sweep service (and ``repro submit``).

A deliberately small synchronous client over one TCP connection: connect,
check the server's ``hello``, ``submit`` a job, iterate streamed rows.
:meth:`SweepClient.run` adds the retry loop reconnect-and-resubmit
clients want -- sweep jobs are pure computation, so resubmitting after a
dropped connection is always safe (the worst case is recomputing rows
the client never saw).

    with SweepClient(host, port) as client:
        result = client.run({"app": "spmv", "kernels": ["merge_path"],
                             "scale": "smoke"})
        for row in result.rows:
            ...

Exceptions map the protocol's failure vocabulary: :class:`JobRejected`
(admission said no -- carries the ``queue_full`` / ``draining`` /
``bad_request`` reason), :class:`ServiceError` (the stream broke or the
server spoke garbage).  Connection errors raise the usual ``OSError``
family from :meth:`SweepClient.connect`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Iterator

from ..evaluation.harness import SweepRow
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    row_from_wire,
)

__all__ = [
    "SweepClient",
    "JobResult",
    "ServiceError",
    "JobRejected",
]


class ServiceError(RuntimeError):
    """The server misbehaved: broken stream, protocol garbage, timeout."""


class JobRejected(ServiceError):
    """Admission control said no; ``reason`` tells the client what to do.

    ``queue_full`` -> back off and retry; ``draining`` -> find another
    instance; ``bad_request`` -> fix the job, retrying is pointless.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(
            f"job rejected: {reason}" + (f" ({detail})" if detail else "")
        )


@dataclass
class JobResult:
    """Everything one job streamed back, in arrival order."""

    job_id: str
    units: int
    rows: list[SweepRow] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)
    status: str = "unknown"  # "ok" | "partial"

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class SweepClient:
    """One synchronous JSON-lines connection to a :class:`SweepService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float = 300.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self.server_hello: dict | None = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> dict:
        """Open the connection and verify the server's ``hello``."""
        self.close()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock = sock
        self._file = sock.makefile("rb")
        hello = self._read_message()
        if hello.get("type") != "hello":
            raise ServiceError(f"expected hello, got {hello.get('type')!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol version mismatch: server speaks "
                f"{hello.get('version')!r}, client speaks {PROTOCOL_VERSION}"
            )
        self.server_hello = hello
        return hello

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.server_hello = None

    def __enter__(self) -> "SweepClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    def _send_message(self, message: dict) -> None:
        if self._sock is None:
            raise ServiceError("client is not connected")
        self._sock.sendall(encode_message(message))

    def _read_message(self) -> dict:
        if self._file is None:
            raise ServiceError("client is not connected")
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad server message: {exc}") from exc

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        self._send_message({"op": "ping"})
        return self._read_message().get("type") == "pong"

    def info(self) -> dict:
        self._send_message({"op": "info"})
        answer = self._read_message()
        if answer.get("type") != "info":
            raise ServiceError(f"expected info, got {answer.get('type')!r}")
        return answer.get("info") or {}

    def submit(self, job: dict) -> dict:
        """Submit one job; returns the ``accepted`` message.

        Raises :class:`JobRejected` when admission refuses (queue full,
        draining, malformed job) -- nothing was queued in that case.
        """
        if not self.connected:
            self.connect()
        self._send_message({"op": "submit", "job": job})
        answer = self._read_message()
        kind = answer.get("type")
        if kind == "accepted":
            return answer
        if kind == "rejected":
            raise JobRejected(
                answer.get("reason", "unknown"), answer.get("error", "")
            )
        raise ServiceError(f"expected accepted/rejected, got {kind!r}")

    def stream(self, accepted: dict) -> Iterator[dict]:
        """Yield this job's ``row`` / ``row_error`` / ``done`` messages.

        Terminates after ``done``.  Messages for other job ids on the
        same connection (interleaved submissions) are skipped here --
        use one connection per concurrent job for simplicity.
        """
        job_id = accepted.get("job_id")
        while True:
            message = self._read_message()
            if message.get("job_id") != job_id:
                continue
            kind = message.get("type")
            if kind in ("row", "row_error"):
                yield message
            elif kind == "done":
                yield message
                return

    def run(self, job: dict, *, retries: int = 0,
            retry_delay: float = 0.2) -> JobResult:
        """Submit, stream to completion, and collect a :class:`JobResult`.

        ``retries`` reconnect-and-resubmit attempts cover dropped
        connections and ``queue_full`` rejections (jobs are pure, so a
        resubmission at worst recomputes).  ``bad_request`` rejections
        never retry -- the job itself is wrong.
        """
        attempts = retries + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(retry_delay * attempt)
            try:
                if not self.connected:
                    self.connect()
                accepted = self.submit(job)
                result = JobResult(
                    job_id=accepted["job_id"], units=int(accepted["units"])
                )
                for message in self.stream(accepted):
                    kind = message.get("type")
                    if kind == "row":
                        result.rows.append(row_from_wire(message["row"]))
                    elif kind == "row_error":
                        result.errors.append(message)
                    else:  # done
                        result.status = message.get("status", "unknown")
                return result
            except JobRejected as exc:
                if exc.reason == "bad_request":
                    raise
                last_error = exc
                self.close()
            except (ServiceError, OSError) as exc:
                last_error = exc
                self.close()
        raise ServiceError(
            f"job did not complete after {attempts} attempt(s): {last_error}"
        ) from last_error
