"""Client library for the sweep service (and ``repro submit``).

A deliberately small synchronous client over one TCP connection: connect,
check the server's ``hello``, ``submit`` a job, iterate streamed rows.
:meth:`SweepClient.run` adds the retry loop reconnect-and-resubmit
clients want -- sweep jobs are pure computation, so resubmitting after a
dropped connection is always safe (the worst case is recomputing rows
the client never saw).

    with SweepClient(host, port) as client:
        result = client.run({"app": "spmv", "kernels": ["merge_path"],
                             "scale": "smoke"})
        for row in result.rows:
            ...

Exceptions map the protocol's failure vocabulary: :class:`JobRejected`
(admission said no -- carries the ``queue_full`` / ``draining`` /
``bad_request`` reason), :class:`ServiceError` (the stream broke or the
server spoke garbage).  Connection errors raise the usual ``OSError``
family from :meth:`SweepClient.connect`.
"""

from __future__ import annotations

import random
import socket
import time
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from ..evaluation.harness import SweepRow
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    row_from_wire,
)

__all__ = [
    "SweepClient",
    "JobResult",
    "ServiceError",
    "JobRejected",
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_IDLE_TIMEOUT",
]

#: How long :meth:`SweepClient.connect` waits for the TCP handshake --
#: a dead host should fail in seconds, not the per-message budget.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: How long a read may sit with no bytes from the server before the
#: stream is declared broken (rows arrive one unit at a time, so this
#: bounds *silence*, not job duration).
DEFAULT_IDLE_TIMEOUT = 300.0


class ServiceError(RuntimeError):
    """The server misbehaved: broken stream, protocol garbage, timeout."""


class JobRejected(ServiceError):
    """Admission control said no; ``reason`` tells the client what to do.

    ``queue_full`` -> back off and retry; ``draining`` -> find another
    instance; ``bad_request`` -> fix the job, retrying is pointless.
    """

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(
            f"job rejected: {reason}" + (f" ({detail})" if detail else "")
        )


@dataclass
class JobResult:
    """Everything one job streamed back, in arrival order."""

    job_id: str
    units: int
    rows: list[SweepRow] = field(default_factory=list)
    errors: list[dict] = field(default_factory=list)
    status: str = "unknown"  # "ok" | "partial"

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class SweepClient:
    """One synchronous JSON-lines connection to a :class:`SweepService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float | None = None,
                 connect_timeout: float | None = None,
                 idle_timeout: float | None = None):
        self.host = host
        self.port = int(port)
        #: ``timeout=`` is the back-compat single knob: it sets both
        #: phases.  The split knobs win when given explicitly --
        #: connecting to a dead host and a quiet-but-healthy stream
        #: deserve very different budgets.
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None
            else (timeout if timeout is not None else DEFAULT_CONNECT_TIMEOUT)
        )
        self.idle_timeout = (
            idle_timeout if idle_timeout is not None
            else (timeout if timeout is not None else DEFAULT_IDLE_TIMEOUT)
        )
        self._sock: socket.socket | None = None
        self._file = None
        self.server_hello: dict | None = None

    @property
    def timeout(self) -> float:
        """Back-compat view of the per-message idle budget."""
        return self.idle_timeout

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(self) -> dict:
        """Open the connection and verify the server's ``hello``."""
        self.close()
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.idle_timeout)
        self._sock = sock
        self._file = sock.makefile("rb")
        hello = self._read_message()
        if hello.get("type") != "hello":
            raise ServiceError(f"expected hello, got {hello.get('type')!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ServiceError(
                f"protocol version mismatch: server speaks "
                f"{hello.get('version')!r}, client speaks {PROTOCOL_VERSION}"
            )
        self.server_hello = hello
        return hello

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self.server_hello = None

    def __enter__(self) -> "SweepClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------
    def _send_message(self, message: dict) -> None:
        if self._sock is None:
            raise ServiceError("client is not connected")
        self._sock.sendall(encode_message(message))

    def _read_message(self) -> dict:
        if self._file is None:
            raise ServiceError("client is not connected")
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServiceError(f"bad server message: {exc}") from exc

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        self._send_message({"op": "ping"})
        return self._read_message().get("type") == "pong"

    def info(self) -> dict:
        self._send_message({"op": "info"})
        answer = self._read_message()
        if answer.get("type") != "info":
            raise ServiceError(f"expected info, got {answer.get('type')!r}")
        return answer.get("info") or {}

    def status(self) -> dict:
        """The server's liveness probe: queue/fault/retry gauges."""
        self._send_message({"op": "status"})
        answer = self._read_message()
        if answer.get("type") != "status":
            raise ServiceError(f"expected status, got {answer.get('type')!r}")
        return {k: v for k, v in answer.items() if k != "type"}

    def submit(self, job: dict) -> dict:
        """Submit one job; returns the ``accepted`` message.

        Raises :class:`JobRejected` when admission refuses (queue full,
        draining, malformed job) -- nothing was queued in that case.
        """
        if not self.connected:
            self.connect()
        self._send_message({"op": "submit", "job": job})
        answer = self._read_message()
        kind = answer.get("type")
        if kind == "accepted":
            return answer
        if kind == "rejected":
            raise JobRejected(
                answer.get("reason", "unknown"), answer.get("error", "")
            )
        raise ServiceError(f"expected accepted/rejected, got {kind!r}")

    def stream(self, accepted: dict) -> Iterator[dict]:
        """Yield this job's ``row`` / ``row_error`` / ``done`` messages.

        Terminates after ``done``.  Messages for other job ids on the
        same connection (interleaved submissions) are skipped here --
        use one connection per concurrent job for simplicity.
        """
        job_id = accepted.get("job_id")
        while True:
            message = self._read_message()
            if message.get("job_id") != job_id:
                continue
            kind = message.get("type")
            if kind in ("row", "row_error"):
                yield message
            elif kind == "done":
                yield message
                return

    def run(self, job: dict, *, retries: int = 0,
            retry_delay: float = 0.2, max_delay: float = 5.0,
            deadline: float | None = None, seed: int = 0) -> JobResult:
        """Submit, stream to completion, and collect a :class:`JobResult`.

        ``retries`` reconnect-and-resubmit attempts cover dropped
        connections and ``queue_full`` rejections (jobs are pure, so a
        resubmission at worst recomputes).  ``bad_request`` rejections
        never retry -- the job itself is wrong.

        Backoff between attempts is exponential from ``retry_delay``,
        capped at ``max_delay``, with deterministic jitter drawn from a
        ``random.Random`` seeded by ``seed`` and the job -- the same
        seed replays the same delays (chaos tests stay reproducible),
        while different clients still decorrelate.  ``deadline`` bounds
        the *total* wall clock across every attempt: no sleep extends
        past it, and once it passes the last error is raised instead of
        retrying.
        """
        attempts = retries + 1
        start = time.monotonic()
        rng = random.Random(
            seed ^ zlib.crc32(repr(sorted(job.items())).encode())
        )
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                delay = min(max_delay, retry_delay * (2 ** (attempt - 1)))
                delay *= 0.5 + rng.random() / 2  # jitter in [0.5, 1.0)
                if deadline is not None:
                    remaining = deadline - (time.monotonic() - start)
                    if remaining <= 0:
                        break
                    delay = min(delay, remaining)
                time.sleep(delay)
            try:
                if not self.connected:
                    self.connect()
                accepted = self.submit(job)
                result = JobResult(
                    job_id=accepted["job_id"], units=int(accepted["units"])
                )
                for message in self.stream(accepted):
                    kind = message.get("type")
                    if kind == "row":
                        result.rows.append(row_from_wire(message["row"]))
                    elif kind == "row_error":
                        result.errors.append(message)
                    else:  # done
                        result.status = message.get("status", "unknown")
                return result
            except JobRejected as exc:
                if exc.reason == "bad_request":
                    raise
                last_error = exc
                self.close()
            except (ServiceError, OSError) as exc:
                last_error = exc
                self.close()
        raise ServiceError(
            f"job did not complete after {attempts} attempt(s): {last_error}"
        ) from last_error
