"""Crash-safe results journal for the sweep service.

Every accepted job, streamed row, per-shard failure and completion is
appended as one JSON event record to a
:class:`~repro.engine.journal.RecordJournal` -- the same magic/versioned
header and ``<II`` len+crc32 framing as the plan store, so a service
killed mid-write loses at most the half-written tail record and nothing
before it.  Replay after a crash recovers every completed row without
re-running anything.

Event schema (one JSON object per record)::

    {"event": "job",  "job_id": ..., "client": ..., "spec": {...}}
    {"event": "row",  "job_id": ..., "seq": N, "row": {row_to_wire...}}
    {"event": "row_error", "job_id": ..., "dataset": ..., "error": "..."}
    {"event": "done", "job_id": ..., "rows": R, "failed": F, "status": ...}

``replay()`` yields raw events; :meth:`ResultsJournal.jobs` aggregates
them into per-job summaries (spec, recovered rows, completion state) --
what an operator inspects after a kill, and what the tests assert.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from ..engine.journal import RecordJournal

__all__ = ["ResultsJournal", "RESULTS_MAGIC", "RESULTS_FORMAT_VERSION"]

RESULTS_MAGIC = b"RPSERVE1"

#: Bump when the event schema changes incompatibly; old files then read
#: as foreign and are rotated on the first append.
RESULTS_FORMAT_VERSION = 1


class ResultsJournal:
    """Append-only JSON event log over the shared record framing."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._journal = RecordJournal(
            self.path, magic=RESULTS_MAGIC, version=RESULTS_FORMAT_VERSION
        )

    def append(self, event: dict) -> None:
        """Durably record one event (single ``O_APPEND`` write)."""
        self._journal.append(json.dumps(event, separators=(",", ":")).encode("utf-8"))

    def replay(self) -> Iterator[dict]:
        """Every whole, CRC-valid event in write order.

        A truncated or corrupt tail (the crash case) silently ends the
        stream -- exactly the plan store's damage contract; an
        undecodable-but-framed payload is skipped.
        """
        for payload in self._journal.payloads():
            try:
                event = json.loads(payload.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if isinstance(event, dict):
                yield event

    def jobs(self) -> dict[str, dict]:
        """Aggregate the event stream into per-job recovery summaries."""
        jobs: dict[str, dict[str, Any]] = {}
        for event in self.replay():
            job_id = event.get("job_id")
            if job_id is None:
                continue
            job = jobs.setdefault(
                job_id,
                {"spec": None, "client": None, "rows": [], "errors": [],
                 "done": False, "status": None},
            )
            kind = event.get("event")
            if kind == "job":
                job["spec"] = event.get("spec")
                job["client"] = event.get("client")
            elif kind == "row":
                job["rows"].append(event.get("row"))
            elif kind == "row_error":
                job["errors"].append(event)
            elif kind == "done":
                job["done"] = True
                job["status"] = event.get("status")
        return jobs

    @property
    def scan_damage(self) -> bool:
        return self._journal.scan_damage

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "ResultsJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
