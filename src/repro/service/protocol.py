"""The sweep service's JSON-lines wire protocol.

One JSON object per ``\\n``-terminated line, both directions, over a
plain TCP stream -- inspectable with ``nc`` and implementable from any
language.  The schema is deliberately small:

Client -> server operations (``{"op": ...}``):

``submit``
    ``{"op": "submit", "job": {...}}`` -- ask the server to run one
    sweep job (see :class:`JobSpec` for the job fields).  Answered by
    ``accepted`` or ``rejected``; an accepted job later streams ``row``
    / ``row_error`` messages and ends with ``done``.
``ping`` / ``info``
    Liveness probe / server statistics.  Answered by ``pong`` / ``info``.
``status``
    Operational probe: queue depth, pool width, in-flight job ids,
    job counters, executor retry/degradation counters and the fault-
    injection registry (:func:`repro.faults.faults_active`).  Answered
    by ``{"type": "status", ...}``.

Server -> client messages (``{"type": ...}``):

``hello``
    Sent once per connection: protocol version + server identity.  A
    client must check ``version`` before submitting.
``accepted``
    ``{"type": "accepted", "job_id": ..., "units": N}`` -- the job is
    queued; ``units`` is the number of dataset shards it will run.
``rejected``
    ``{"type": "rejected", "reason": "queue_full" | "draining" |
    "bad_request", ...}`` -- admission failed; nothing was queued.
    ``queue_full`` is the backpressure signal (the bounded job queue is
    at ``REPRO_SERVE_QUEUE_DEPTH``); clients retry with backoff.
``row``
    One completed :class:`~repro.evaluation.harness.SweepRow`, streamed
    as its dataset shard finishes -- the same schema ``repro sweep
    --rows-jsonl`` writes (see :func:`row_to_wire`), so placement and
    cache counters flow to clients through ``meta``.
``row_error``
    One dataset shard failed (worker crash, validation failure, or the
    job's ``REPRO_SERVE_JOB_TIMEOUT`` deadline); the job carries on
    with its remaining shards -- unless the deadline passed, in which
    case every remaining shard fails immediately (bounded time).
``done``
    The job finished: ``{"type": "done", "job_id": ..., "rows": R,
    "failed": F, "status": "ok" | "partial" | "timeout"}``.
``error``
    The *request* was malformed (undecodable line, unknown op).  The
    connection stays usable.

Serialization helpers here are shared by the server, the client library
and the CLI (``sweep --rows-jsonl`` emits :func:`row_to_wire` objects),
so "the schema the service streams" is defined exactly once.
"""

from __future__ import annotations

import json
from typing import Any

from ..evaluation.harness import SweepRow

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "json_safe",
    "row_to_wire",
    "row_from_wire",
]

#: Bump on incompatible wire changes; the client refuses a mismatched
#: server instead of misreading its stream.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A line that is not a valid protocol message."""


def json_safe(value: Any) -> Any:
    """Coerce ``value`` into something ``json.dumps`` accepts, lossily.

    Row ``meta`` carries whatever engines stamp into launch extras --
    NumPy scalars, tuples, nested dicts, occasionally richer objects.
    The wire format keeps numbers as numbers (NumPy scalars have
    ``item()``), sequences as lists, and falls back to ``repr`` for
    anything else: diagnostics must never make a row unstreamable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_safe(item())
        except Exception:
            pass
    return repr(value)


def encode_message(message: dict) -> bytes:
    """One protocol message as a ``\\n``-terminated JSON line."""
    return (json.dumps(json_safe(message), separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_message(line: bytes | str) -> dict:
    """Parse one received line; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty message line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable message line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message


def row_to_wire(row: SweepRow) -> dict:
    """One :class:`SweepRow` as its wire/JSONL object.

    The paper's CSV schema plus ``app`` and the ``meta`` diagnostics --
    exactly what the service streams per row and what ``repro sweep
    --rows-jsonl`` writes per line.
    """
    return {
        "app": row.app,
        "kernel": row.kernel,
        "dataset": row.dataset,
        "rows": int(row.rows),
        "cols": int(row.cols),
        "nnzs": int(row.nnzs),
        "elapsed": float(row.elapsed),
        "meta": json_safe(row.meta),
    }


def row_from_wire(obj: dict) -> SweepRow:
    """Rebuild a :class:`SweepRow` from its wire object.

    The dataclass compares everything except ``meta``, so a rebuilt row
    equals the row a direct :func:`~repro.evaluation.harness.run_suite`
    call produces (floats survive the JSON round trip bit-exactly).
    """
    return SweepRow(
        app=obj.get("app", "spmv"),
        kernel=obj["kernel"],
        dataset=obj["dataset"],
        rows=int(obj["rows"]),
        cols=int(obj["cols"]),
        nnzs=int(obj["nnzs"]),
        elapsed=float(obj["elapsed"]),
        meta=dict(obj.get("meta") or {}),
    )
