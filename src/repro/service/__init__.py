"""``repro serve`` -- the multi-tenant sweep service over the warm stack.

Public surface:

* :class:`~repro.service.server.SweepService` -- the asyncio daemon (one
  persistent executor, bounded admission, round-robin fairness,
  streaming results, crash-safe journal, drain-on-signal).
* :class:`~repro.service.client.SweepClient` -- the synchronous client
  library behind ``repro submit``.
* :mod:`repro.service.protocol` -- the JSON-lines wire schema, shared by
  both plus ``repro sweep --rows-jsonl``.
* :class:`~repro.service.journal.ResultsJournal` -- the CRC-framed
  results log and its replay/aggregation helpers.
"""

from .client import JobRejected, JobResult, ServiceError, SweepClient
from .journal import RESULTS_FORMAT_VERSION, RESULTS_MAGIC, ResultsJournal
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    json_safe,
    row_from_wire,
    row_to_wire,
)
from .server import (
    DEFAULT_JOB_TIMEOUT,
    DEFAULT_QUEUE_DEPTH,
    SERVE_JOB_TIMEOUT_ENV,
    SERVE_QUEUE_DEPTH_ENV,
    SERVE_WIDTH_ENV,
    SweepService,
)

__all__ = [
    "SweepService",
    "SweepClient",
    "JobResult",
    "ServiceError",
    "JobRejected",
    "ResultsJournal",
    "RESULTS_MAGIC",
    "RESULTS_FORMAT_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "encode_message",
    "decode_message",
    "json_safe",
    "row_to_wire",
    "row_from_wire",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_JOB_TIMEOUT",
    "SERVE_QUEUE_DEPTH_ENV",
    "SERVE_JOB_TIMEOUT_ENV",
    "SERVE_WIDTH_ENV",
]
