"""``repro.apps`` -- applications built on the load-balancing abstraction.

Every application here is *declared once* -- work definition, cost
model, vectorized result, SIMT kernel body, oracle -- and registered
with the :mod:`repro.engine` registry, which owns all execution.
Switching the load balancer or the execution engine is a one-identifier
change, the paper's core usability claim.  SpMV is the evaluation
benchmark; SpMM/SpGEMM, BFS/SSSP, PageRank, triangle counting, MTTKRP
and the degree histogram reproduce the paper's Section 5.3 application
space; importing this package registers them all (see
:func:`repro.engine.available_apps`).
"""

from .bfs import bfs, bfs_reference
from .common import AppResult, spmv_costs
from .histogram import degree_histogram, degree_histogram_reference
from .operators import FrontierResult, advance, compute, filter_frontier
from .pagerank import pagerank, pagerank_reference
from .spgemm import spgemm, spgemm_reference
from .spmm import spmm, spmm_reference
from .spmttkrp import mttkrp_costs, spmttkrp, spmttkrp_reference
from .spmv import spmv, spmv_reference
from .sssp import sssp, sssp_reference
from .traversal import advance_workspec, run_frontier_loop, traversal_costs
from .triangle_count import triangle_count, triangle_count_reference

__all__ = [
    "AppResult",
    "spmv_costs",
    "bfs",
    "bfs_reference",
    "degree_histogram",
    "degree_histogram_reference",
    "FrontierResult",
    "advance",
    "compute",
    "filter_frontier",
    "pagerank",
    "pagerank_reference",
    "spgemm",
    "spgemm_reference",
    "spmm",
    "spmm_reference",
    "mttkrp_costs",
    "spmttkrp",
    "spmttkrp_reference",
    "spmv",
    "spmv_reference",
    "sssp",
    "sssp_reference",
    "advance_workspec",
    "run_frontier_loop",
    "traversal_costs",
    "triangle_count",
    "triangle_count_reference",
]
