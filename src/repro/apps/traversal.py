"""Frontier-based graph traversal: the substrate for BFS and SSSP.

The paper's data-centric graph kernels (Listing 5) are built on a
*neighborhood traversal*: each iteration launches one load-balanced kernel
whose tiles are the frontier's vertices and whose atoms are their outgoing
edges.  The per-iteration WorkSpec is rebuilt from the frontier -- which is
exactly why graph workloads are so imbalance-prone (frontier degree
distributions are arbitrary) and why reusing SpMV's schedules here is the
paper's headline composability result.

Each frontier advance is described to the engine layer as one launch:
algorithms supply a vectorized ``relax`` (NumPy over the whole edge
frontier; the vector engine's functional path) and optionally a scalar
``relax_edge`` (one edge at a time; the SIMT engine's kernel body).  The
loop itself is engine-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..engine import Runtime
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats
from ..sparse.graph import CsrGraph
from .common import tile_charges

__all__ = [
    "FrontierIteration",
    "traversal_costs",
    "advance_workspec",
    "run_frontier_loop",
    "graph_sweep_problem",
]


def graph_sweep_problem(matrix, seed: int):
    """Lift a square corpus matrix into a traversal problem (source 0).

    Shared by the BFS and SSSP registrations: weights are taken as
    absolute values so any corpus matrix satisfies SSSP's non-negativity
    requirement.
    """
    from types import SimpleNamespace

    from ..sparse.csr import CsrMatrix

    graph = CsrGraph(
        csr=CsrMatrix.from_arrays(
            matrix.row_offsets,
            matrix.col_indices,
            np.abs(matrix.values),
            matrix.shape,
            validate=False,
        )
    )
    return SimpleNamespace(graph=graph, source=0, max_iterations=None)


def traversal_costs(spec: GpuSpec) -> WorkCosts:
    """Per-edge cost of a relaxation: neighbor/weight loads, a gather of
    the distance, an atomicMin, and a frontier-flag store."""
    c = spec.costs
    return WorkCosts(
        atom_cycles=(
            c.global_load_coalesced  # neighbor id
            + c.global_load_coalesced  # edge weight
            + c.global_load_random  # dist[source or neighbor] gather
            + c.global_store  # out_frontier flag
        ),
        tile_cycles=c.global_load_coalesced,  # row extent of the vertex
        tile_reduction=False,
        atom_atomic=True,  # the atomicMin of Listing 5
        # 4B neighbor + 8B weight + 8B dist + 1B frontier flag; 4B extent.
        atom_bytes=21.0,
        tile_bytes=4.0,
    )


def advance_workspec(graph: CsrGraph, frontier: np.ndarray) -> WorkSpec:
    """WorkSpec of one frontier: tiles = frontier vertices, atoms = edges."""
    degrees = graph.out_degrees()[frontier]
    return WorkSpec.from_counts(degrees, label="frontier")


@dataclass
class FrontierIteration:
    """One advance step's bookkeeping (for tests and traces)."""

    iteration: int
    frontier_size: int
    edges: int
    stats: KernelStats


def run_frontier_loop(
    graph: CsrGraph,
    source: int,
    relax,
    *,
    relax_edge=None,
    make_compiled=None,
    rt: Runtime | None = None,
    schedule: str | Schedule = "group_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    max_iterations: int | None = None,
    **schedule_options,
):
    """Generic level-synchronous frontier loop.

    ``relax(frontier, edge_sources, edge_targets, edge_weights)`` must
    return a boolean mask over vertices marking the next frontier.  The
    function handles the vectorized edge expansion and the per-iteration
    load-balanced timing; algorithms (BFS, SSSP) supply only the relaxation
    -- the "user-defined computation" stage of the abstraction.

    ``relax_edge(ctx, src, dst, weight, next_mask)`` is the scalar form of
    the same relaxation, consumed one edge at a time by the SIMT engine's
    interpreted kernel; it must mark improved vertices in ``next_mask``.
    Algorithms that omit it run on the vector engine only.

    ``make_compiled(iteration, frontier, edge_sources, edge_targets,
    edge_weights)`` builds the iteration's
    :class:`~repro.engine.compiled.CompiledKernel` for the compiled
    engine; the per-iteration factory exists because each advance closes
    over a fresh edge expansion.  Kernels are labelled ``"advance"`` for
    per-kernel engine overrides.

    ``rt`` carries the engine/schedule/device selection; when omitted, a
    vector-engine runtime is built from the legacy keyword arguments.

    Returns ``(iterations, total_stats)``.
    """
    if rt is None:
        rt = Runtime(
            "vector",
            spec=spec,
            schedule=schedule,
            launch=launch,
            schedule_options=schedule_options,
        )
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    csr = graph.csr
    n = graph.num_vertices
    frontier = np.asarray([source], dtype=np.int64)
    iterations: list[FrontierIteration] = []
    total_stats: KernelStats | None = None
    limit = max_iterations if max_iterations is not None else graph.num_vertices + 1
    costs = traversal_costs(rt.spec)

    for it in range(limit):
        if frontier.size == 0:
            break
        work = advance_workspec(graph, frontier)
        if work.num_atoms == 0 and work.num_tiles == 0:  # pragma: no cover
            break

        # Vectorized edge expansion of the frontier.  Atom id e of this
        # iteration's WorkSpec indexes these arrays directly.
        degrees = csr.row_lengths()[frontier]
        edge_sources = np.repeat(frontier, degrees)
        starts = csr.row_offsets[frontier]
        total_edges = int(degrees.sum())
        offs = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(degrees[:-1], out=offs[1:])
        within = np.arange(total_edges, dtype=np.int64) - np.repeat(offs, degrees)
        edge_ids = np.repeat(starts, degrees) + within
        edge_targets = csr.col_indices[edge_ids]
        edge_weights = csr.values[edge_ids]

        sched = rt.schedule_for(work, matrix=csr, kernel="advance", costs=costs)

        def compute():
            return relax(frontier, edge_sources, edge_targets, edge_weights)

        kernel = None
        if relax_edge is not None:

            def kernel():
                next_mask = np.zeros(n, dtype=bool)
                atom_c, tile_c = tile_charges(sched, costs)

                def body(ctx):
                    # Listing 5's pattern: edges through the schedule, the
                    # owning vertex recovered implicitly via the tile.
                    for tile in sched.tiles(ctx):
                        m = 0
                        for e in sched.atoms(ctx, tile):
                            relax_edge(
                                ctx,
                                int(edge_sources[e]),
                                int(edge_targets[e]),
                                float(edge_weights[e]),
                                next_mask,
                            )
                            m += 1
                        ctx.charge(m * atom_c + tile_c)

                return body, lambda: next_mask

        compiled = None
        if make_compiled is not None:
            compiled = make_compiled(
                it, frontier, edge_sources, edge_targets, edge_weights
            )

        next_mask, stats = rt.run_launch(
            sched,
            costs,
            compute=compute,
            kernel=kernel,
            compiled=compiled,
            kernel_label="advance",
            extras={"app": "traversal", "iteration": it},
        )
        total_stats = stats if total_stats is None else total_stats + stats

        iterations.append(
            FrontierIteration(
                iteration=it,
                frontier_size=int(frontier.size),
                edges=total_edges,
                stats=stats,
            )
        )
        frontier = np.nonzero(next_mask)[0].astype(np.int64)

    if total_stats is None:
        # Degenerate single-vertex graph: charge one empty launch.
        total_stats = KernelStats(
            elapsed_ms=rt.spec.cycles_to_ms(rt.spec.costs.kernel_launch_cycles),
            makespan_cycles=rt.spec.costs.kernel_launch_cycles,
            grid_dim=1,
            block_dim=32,
            occupancy=0.0,
            simt_efficiency=1.0,
            utilization=0.0,
            tail_fraction=0.0,
            total_thread_cycles=0.0,
        )
    return iterations, total_stats
