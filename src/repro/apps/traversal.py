"""Frontier-based graph traversal: the substrate for BFS and SSSP.

The paper's data-centric graph kernels (Listing 5) are built on a
*neighborhood traversal*: each iteration launches one load-balanced kernel
whose tiles are the frontier's vertices and whose atoms are their outgoing
edges.  The per-iteration WorkSpec is rebuilt from the frontier -- which is
exactly why graph workloads are so imbalance-prone (frontier degree
distributions are arbitrary) and why reusing SpMV's schedules here is the
paper's headline composability result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats
from ..sparse.graph import CsrGraph
from .common import resolve_schedule

__all__ = ["FrontierIteration", "traversal_costs", "advance_workspec", "run_frontier_loop"]


def traversal_costs(spec: GpuSpec) -> WorkCosts:
    """Per-edge cost of a relaxation: neighbor/weight loads, a gather of
    the distance, an atomicMin, and a frontier-flag store."""
    c = spec.costs
    return WorkCosts(
        atom_cycles=(
            c.global_load_coalesced  # neighbor id
            + c.global_load_coalesced  # edge weight
            + c.global_load_random  # dist[source or neighbor] gather
            + c.global_store  # out_frontier flag
        ),
        tile_cycles=c.global_load_coalesced,  # row extent of the vertex
        tile_reduction=False,
        atom_atomic=True,  # the atomicMin of Listing 5
        # 4B neighbor + 8B weight + 8B dist + 1B frontier flag; 4B extent.
        atom_bytes=21.0,
        tile_bytes=4.0,
    )


def advance_workspec(graph: CsrGraph, frontier: np.ndarray) -> WorkSpec:
    """WorkSpec of one frontier: tiles = frontier vertices, atoms = edges."""
    degrees = graph.out_degrees()[frontier]
    return WorkSpec.from_counts(degrees, label="frontier")


@dataclass
class FrontierIteration:
    """One advance step's bookkeeping (for tests and traces)."""

    iteration: int
    frontier_size: int
    edges: int
    stats: KernelStats


def run_frontier_loop(
    graph: CsrGraph,
    source: int,
    relax,
    *,
    schedule: str | Schedule = "group_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    max_iterations: int | None = None,
    **schedule_options,
):
    """Generic level-synchronous frontier loop.

    ``relax(frontier, edge_sources, edge_targets, edge_weights)`` must
    return a boolean mask over vertices marking the next frontier.  The
    function handles the vectorized edge expansion and the per-iteration
    load-balanced timing; algorithms (BFS, SSSP) supply only the relaxation
    -- the "user-defined computation" stage of the abstraction.

    Returns ``(iterations, total_stats)``.
    """
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    csr = graph.csr
    frontier = np.asarray([source], dtype=np.int64)
    iterations: list[FrontierIteration] = []
    total_stats: KernelStats | None = None
    limit = max_iterations if max_iterations is not None else graph.num_vertices + 1

    for it in range(limit):
        if frontier.size == 0:
            break
        work = advance_workspec(graph, frontier)
        if work.num_atoms > 0 or work.num_tiles > 0:
            sched = resolve_schedule(
                schedule, work, spec, launch, matrix=csr, **schedule_options
            )
            stats = sched.plan(
                traversal_costs(spec), extras={"app": "traversal", "iteration": it}
            )
            total_stats = stats if total_stats is None else total_stats + stats
        else:  # pragma: no cover - empty graphs
            break

        # Vectorized edge expansion of the frontier.
        degrees = csr.row_lengths()[frontier]
        edge_sources = np.repeat(frontier, degrees)
        starts = csr.row_offsets[frontier]
        total_edges = int(degrees.sum())
        offs = np.zeros(frontier.size, dtype=np.int64)
        np.cumsum(degrees[:-1], out=offs[1:])
        within = np.arange(total_edges, dtype=np.int64) - np.repeat(offs, degrees)
        edge_ids = np.repeat(starts, degrees) + within
        edge_targets = csr.col_indices[edge_ids]
        edge_weights = csr.values[edge_ids]

        next_mask = relax(frontier, edge_sources, edge_targets, edge_weights)
        iterations.append(
            FrontierIteration(
                iteration=it,
                frontier_size=int(frontier.size),
                edges=total_edges,
                stats=stats,
            )
        )
        frontier = np.nonzero(next_mask)[0].astype(np.int64)

    if total_stats is None:
        # Degenerate single-vertex graph: charge one empty launch.
        total_stats = KernelStats(
            elapsed_ms=spec.cycles_to_ms(spec.costs.kernel_launch_cycles),
            makespan_cycles=spec.costs.kernel_launch_cycles,
            grid_dim=1,
            block_dim=32,
            occupancy=0.0,
            simt_efficiency=1.0,
            utilization=0.0,
            tail_fraction=0.0,
            total_thread_cycles=0.0,
        )
    return iterations, total_stats
