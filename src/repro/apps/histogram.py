"""Degree histogram: the smallest useful irregular kernel.

Bins every tile by its atom count with one atomic increment per tile --
a two-line "user computation" that nevertheless exercises the whole
pipeline (work definition, schedule, execution).  Used by the quickstart
example and as the minimal app in integration tests.

Under the SIMT engine the kernel reconstructs each tile's atom count by
*consuming its atoms through the schedule* (each thread contributes the
atoms it was assigned with an atomic), so partial-tile schedules like
merge-path remain exact; the binning itself happens in the finalize
step, like a trailing ``bincount`` launch.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.schedules.lrb import lrb_bins
from ..core.work import WorkSpec
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.csr import CsrMatrix
from .common import AppResult, tile_charges

__all__ = ["degree_histogram", "degree_histogram_reference", "histogram_driver"]


def _bin_counts(counts: np.ndarray) -> np.ndarray:
    """LRB-bin an atom-count array into the histogram (shared by the
    reference and the SIMT finalize, so the two can never desynchronize)."""
    bins = lrb_bins(counts)
    num_bins = int(bins.max()) + 1 if bins.size else 1
    return np.bincount(bins, minlength=num_bins).astype(np.int64)


def _histogram_arrays(row_offsets):
    """The whole histogram over the flat extent array."""
    return _bin_counts(np.diff(row_offsets))


def _histogram_scalar(row_offsets):
    """Flat-loop histogram (jit-able, integer-exact).

    Bins by ``bit_length(count)`` -- the scalar identity of LRB's
    ``ceil(log2(n + 1))`` binning -- so the result equals
    :func:`_histogram_arrays` exactly.
    """
    num_rows = row_offsets.shape[0] - 1
    max_bin = 0
    for row in range(num_rows):
        n = row_offsets[row + 1] - row_offsets[row]
        bin_id = 0
        while n > 0:
            bin_id += 1
            n >>= 1
        if bin_id > max_bin:
            max_bin = bin_id
    hist = np.zeros(max_bin + 1, dtype=np.int64)
    for row in range(num_rows):
        n = row_offsets[row + 1] - row_offsets[row]
        bin_id = 0
        while n > 0:
            bin_id += 1
            n >>= 1
        hist[bin_id] += 1
    return hist


def _histogram_example_args() -> tuple:
    return (np.array([0, 1, 3], dtype=np.int64),)


register_jit_warmup("histogram", _histogram_scalar, _histogram_example_args)
declare_kernel_effects("histogram", "histogram", scalar_fn=_histogram_scalar)


def degree_histogram_reference(matrix: CsrMatrix) -> np.ndarray:
    """Pure NumPy oracle: LRB-binned row-length histogram."""
    return _histogram_arrays(matrix.row_offsets)


def degree_histogram(
    matrix: CsrMatrix,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Histogram of ``ceil(log2(row_length + 1))`` bins (LRB's binning).

    ``ctx`` is the single execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling (default schedule:
    ``thread_mapped``).
    """
    problem = SimpleNamespace(matrix=matrix)
    return run_app(
        "histogram",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def _histogram_costs(spec: GpuSpec) -> WorkCosts:
    c = spec.costs
    return WorkCosts(
        atom_cycles=0.0,  # the histogram never touches individual atoms
        tile_cycles=c.global_load_coalesced + c.alu + c.atomic,
        tile_reduction=False,
    )


def histogram_driver(problem, rt: Runtime) -> AppResult:
    """The registered degree-histogram declaration."""
    matrix = problem.matrix
    work = WorkSpec.from_csr(matrix, label="histogram")
    costs = _histogram_costs(rt.spec)
    sched = rt.schedule_for(work, matrix=matrix, kernel="histogram", costs=costs)

    def compute() -> np.ndarray:
        return degree_histogram_reference(matrix)

    def kernel():
        counts = np.zeros(matrix.num_rows)
        atom_c, tile_c = tile_charges(sched, costs)

        def body(ctx):
            for row in sched.tiles(ctx):
                n = 0
                for _nz in sched.atoms(ctx, row):
                    n += 1
                ctx.charge(n * atom_c + tile_c)
                if n:
                    ctx.atomic_add(counts, row, n)

        def finalize() -> np.ndarray:
            return _bin_counts(counts.astype(np.int64))

        return body, finalize

    output, stats = rt.run_launch(
        sched,
        costs,
        compute=compute,
        kernel=kernel,
        compiled=CompiledKernel(
            label="histogram",
            args=(matrix.row_offsets,),
            vector_fn=_histogram_arrays,
            scalar_fn=_histogram_scalar,
        ),
        kernel_label="histogram",
        extras={"app": "degree_histogram"},
    )
    return AppResult(output=output, stats=stats, schedule=sched.name)


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent sampled dense check: recount sampled bins with a
    scalar ``int.bit_length`` binning over raw ``row_offsets`` diffs --
    no ``lrb_bins``, no ``bincount`` -- so the histogram is validated
    against a formulation that shares nothing with the reference."""
    from collections import Counter

    matrix = problem.matrix
    hist = np.asarray(output, dtype=np.int64)
    if hist.ndim != 1 or hist.size == 0:
        return False
    # bit_length(n) == ceil(log2(n + 1)) for n >= 0: the LRB bin id.
    # One pass builds the per-bin recount; the sampled bins then compare
    # in O(1) each.
    bins = Counter(
        int(x).bit_length() for x in np.diff(matrix.row_offsets)
    )
    if bins and max(bins) >= hist.size:
        return False
    rng = np.random.default_rng(seed)
    sampled = rng.integers(0, hist.size, size=min(samples, hist.size))
    return all(int(hist[b]) == bins[b] for b in set(sampled.tolist()))


register_app(
    AppSpec(
        name="histogram",
        driver=histogram_driver,
        default_schedule="thread_mapped",
        oracle=lambda p: degree_histogram_reference(p.matrix),
        sweep_problem=lambda matrix, seed: SimpleNamespace(matrix=matrix),
        sample_check=_sample_check,
        description="LRB-binned row-degree histogram (minimal app)",
    )
)
