"""Degree histogram: the smallest useful irregular kernel.

Bins every tile by its atom count with one atomic increment per tile --
a two-line "user computation" that nevertheless exercises the whole
pipeline (work definition, schedule, execution).  Used by the quickstart
example and as the minimal app in integration tests.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..core.schedules.lrb import lrb_bins
from ..sparse.csr import CsrMatrix
from .common import AppResult, resolve_schedule

__all__ = ["degree_histogram"]


def degree_histogram(
    matrix: CsrMatrix,
    *,
    schedule: str | Schedule = "thread_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Histogram of ``ceil(log2(row_length + 1))`` bins (LRB's binning)."""
    counts = matrix.row_lengths()
    bins = lrb_bins(counts)
    num_bins = int(bins.max()) + 1 if bins.size else 1
    hist = np.bincount(bins, minlength=num_bins).astype(np.int64)

    work = WorkSpec.from_csr(matrix, label="histogram")
    c = spec.costs
    costs = WorkCosts(
        atom_cycles=0.0,  # the histogram never touches individual atoms
        tile_cycles=c.global_load_coalesced + c.alu + c.atomic,
        tile_reduction=False,
    )
    sched = resolve_schedule(
        schedule, work, spec, launch, matrix=matrix, **schedule_options
    )
    stats = sched.plan(costs, extras={"app": "degree_histogram"})
    return AppResult(output=hist, stats=stats, schedule=sched.name)
