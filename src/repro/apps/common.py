"""Shared vocabulary of the application layer.

Applications in this package are *declarations*, not executors.  Each
module declares, exactly once, the pieces the paper says an application
should consist of, and registers them as an
:class:`~repro.engine.registry.AppSpec`:

1. how to build a :class:`~repro.core.work.WorkSpec` from the input
   format (the work definition stage),
2. a :class:`~repro.core.schedule.WorkCosts` cost model (what one atom /
   one tile costs the machine),
3. a vectorized functional result (NumPy; corpus scale),
4. a per-thread SIMT kernel body written in the paper's range-based
   pattern (ground truth; small inputs),
5. a pure CPU oracle for validation.

Execution -- resolving the schedule, running the kernel, assembling
:class:`KernelStats` -- is owned entirely by :mod:`repro.engine`: the
driver describes launches to a :class:`~repro.engine.dispatch.Runtime`
and the selected engine (``"vector"``, ``"simt"``, ``"multi_gpu"``, ...;
see :func:`~repro.engine.dispatch.available_engines`) does the rest.
Switching the schedule *or* the engine is a one-identifier change, and no
application module contains engine-specific plumbing.  Since the
ExecutionContext redesign both identifiers -- plus the schedule *policy*,
the device spec and the launch override -- travel together in one frozen
:class:`~repro.engine.context.ExecutionContext` value.

This module keeps the pieces the app declarations share: the
:class:`AppResult` envelope, the SpMV cost model (reused by SpMM and the
baselines), and input canonicalization helpers.  ``resolve_schedule``
and ``ENGINES`` are re-exported from the engine layer for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.schedule import WorkCosts
from ..engine.dispatch import available_engines, resolve_schedule
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats

__all__ = ["AppResult", "resolve_schedule", "spmv_costs", "ENGINES"]

#: Deprecated alias: the engine set lives in a registry now
#: (:func:`repro.engine.dispatch.available_engines`).
ENGINES = available_engines()


@dataclass
class AppResult:
    """Output of one simulated application run."""

    output: Any
    stats: KernelStats
    schedule: str
    extras: dict = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        return self.stats.elapsed_ms


def spmv_costs(
    spec: GpuSpec = V100, *, gather_working_set_bytes: float | None = None
) -> WorkCosts:
    """Per-atom / per-tile costs of the SpMV computation (Listing 3).

    One atom is ``sum += values[nz] * x[indices[nz]]``: a coalesced load of
    the value, a coalesced load of the column index, a *gather* from the
    dense vector, and an FMA.  One tile reads its row extent and stores one
    output element.

    When ``gather_working_set_bytes`` is given (the size of the gathered
    vector x), the paper's future-work locality model
    (:mod:`repro.gpusim.cache`) replaces the flat pessimistic gather cost
    with a cache-aware one: small vectors become L2-resident and gathers
    get cheap.
    """
    c = spec.costs
    if gather_working_set_bytes is None:
        gather = c.global_load_random
    else:
        from ..gpusim.cache import effective_gather_cost

        gather = effective_gather_cost(spec, gather_working_set_bytes)
    return WorkCosts(
        atom_cycles=(
            c.global_load_coalesced  # values[nz]
            + c.global_load_coalesced  # indices[nz]
            + gather  # x[indices[nz]]
            + c.fma
        ),
        tile_cycles=c.global_load_coalesced + c.global_store,  # extent + y[row]
        tile_reduction=True,
        # 8B value + 4B column index + 8B x gather; 4B offset + 8B y store.
        atom_bytes=20.0,
        tile_bytes=12.0,
    )


def check_dense_vector(x, expected_len: int, name: str = "x") -> np.ndarray:
    """Validate and canonicalize a dense input vector."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size != expected_len:
        raise ValueError(
            f"{name} must be a one-dimensional vector of length {expected_len}, "
            f"got shape {np.shape(x)}"
        )
    return arr


def tile_charges(sched, costs: WorkCosts) -> tuple[float, float]:
    """Per-atom / per-tile cycle charges of an interpreted kernel body.

    The SIMT kernels charge ``n_atoms * atom + tile`` per visited tile --
    the user's declared costs plus the loop overhead and the schedule's
    abstraction tax, matching what the analytic planners price.
    """
    spec = sched.spec
    atom = costs.atom_total(spec) + getattr(sched, "abstraction_tax", 0.0)
    tile = costs.tile_cycles + spec.costs.loop_overhead
    return atom, tile
