"""Shared plumbing for the application kernels.

Applications in this package follow the paper's three-stage pattern:

1. build a :class:`~repro.core.work.WorkSpec` from the input format,
2. instantiate a schedule by name (one-identifier switch, Section 6.2),
3. consume the balanced ranges.

Each app supports two engines:

* ``"vector"`` -- NumPy functional result + analytic timing from the
  schedule's planner (corpus scale);
* ``"simt"`` -- the kernel is executed thread-by-thread on the simulated
  GPU through the schedule's per-thread ranges (ground truth; small
  inputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.heuristic import HeuristicParams, select_schedule
from ..core.schedule import LaunchParams, Schedule, WorkCosts, make_schedule
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats
from ..sparse.csr import CsrMatrix

__all__ = ["AppResult", "resolve_schedule", "spmv_costs", "ENGINES"]

ENGINES = ("vector", "simt")


@dataclass
class AppResult:
    """Output of one simulated application run."""

    output: Any
    stats: KernelStats
    schedule: str
    extras: dict = field(default_factory=dict)

    @property
    def elapsed_ms(self) -> float:
        return self.stats.elapsed_ms


def resolve_schedule(
    schedule: str | Schedule,
    work: WorkSpec,
    spec: GpuSpec,
    launch: LaunchParams | None = None,
    *,
    matrix: CsrMatrix | None = None,
    heuristic: HeuristicParams | None = None,
    **options,
) -> Schedule:
    """Turn a schedule name (or ``"heuristic"``) into an instance.

    ``"heuristic"`` applies the Section 6.2 selector and requires the
    matrix for its shape statistics.
    """
    if isinstance(schedule, Schedule):
        return schedule
    name = schedule
    if name == "heuristic":
        if matrix is None:
            raise ValueError("schedule='heuristic' requires the input matrix")
        name = select_schedule(matrix, heuristic or HeuristicParams())
    return make_schedule(name, work, spec, launch, **options)


def spmv_costs(
    spec: GpuSpec = V100, *, gather_working_set_bytes: float | None = None
) -> WorkCosts:
    """Per-atom / per-tile costs of the SpMV computation (Listing 3).

    One atom is ``sum += values[nz] * x[indices[nz]]``: a coalesced load of
    the value, a coalesced load of the column index, a *gather* from the
    dense vector, and an FMA.  One tile reads its row extent and stores one
    output element.

    When ``gather_working_set_bytes`` is given (the size of the gathered
    vector x), the paper's future-work locality model
    (:mod:`repro.gpusim.cache`) replaces the flat pessimistic gather cost
    with a cache-aware one: small vectors become L2-resident and gathers
    get cheap.
    """
    c = spec.costs
    if gather_working_set_bytes is None:
        gather = c.global_load_random
    else:
        from ..gpusim.cache import effective_gather_cost

        gather = effective_gather_cost(spec, gather_working_set_bytes)
    return WorkCosts(
        atom_cycles=(
            c.global_load_coalesced  # values[nz]
            + c.global_load_coalesced  # indices[nz]
            + gather  # x[indices[nz]]
            + c.fma
        ),
        tile_cycles=c.global_load_coalesced + c.global_store,  # extent + y[row]
        tile_reduction=True,
        # 8B value + 4B column index + 8B x gather; 4B offset + 8B y store.
        atom_bytes=20.0,
        tile_bytes=12.0,
    )


def check_dense_vector(x, expected_len: int, name: str = "x") -> np.ndarray:
    """Validate and canonicalize a dense input vector."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim != 1 or arr.size != expected_len:
        raise ValueError(
            f"{name} must be a one-dimensional vector of length {expected_len}, "
            f"got shape {np.shape(x)}"
        )
    return arr
