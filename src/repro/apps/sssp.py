"""Single-source shortest path (Listing 5).

A data-centric, frontier-based SSSP: each iteration relaxes every outgoing
edge of the frontier with an atomicMin on the tentative distances, and
vertices whose distance improved form the next frontier.  The relaxation
is four lines; the load balancing -- the part that dominates SSSP's GPU
performance (Section 5.3) -- is whatever schedule the caller names,
straight from the same library the SpMV benchmark uses.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..gpusim.arch import GpuSpec, V100
from ..sparse.graph import CsrGraph
from .common import AppResult
from .traversal import run_frontier_loop

__all__ = ["sssp", "sssp_reference"]


def sssp_reference(graph: CsrGraph, source: int) -> np.ndarray:
    """Dijkstra oracle (binary heap, pure Python; for validation)."""
    import heapq

    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    csr = graph.csr
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        lo, hi = csr.row_offsets[u], csr.row_offsets[u + 1]
        for e in range(lo, hi):
            v = int(csr.col_indices[e])
            nd = d + float(csr.values[e])
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def sssp(
    graph: CsrGraph,
    source: int,
    *,
    schedule: str | Schedule = "group_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    max_iterations: int | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced SSSP on the simulated GPU.

    Edge weights must be non-negative.  Returns the distance array; the
    stats compose every frontier launch, one load-balanced kernel per
    iteration (Listing 5's outer loop).
    """
    if graph.num_edges and graph.csr.values.min() < 0:
        raise ValueError("SSSP requires non-negative edge weights")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    dist = np.full(n, np.inf)
    dist[source] = 0.0

    def relax(frontier, edge_sources, edge_targets, edge_weights):
        # Listing 5's body, vectorized: atomicMin(dist[neighbor], ...)
        candidate = dist[edge_sources] + edge_weights
        before = dist[edge_targets].copy()
        np.minimum.at(dist, edge_targets, candidate)
        improved = dist[edge_targets] < before
        next_mask = np.zeros(n, dtype=bool)
        next_mask[edge_targets[improved]] = True  # out_frontier[neighbor]
        return next_mask

    iterations, stats = run_frontier_loop(
        graph,
        source,
        relax,
        schedule=schedule,
        spec=spec,
        launch=launch,
        max_iterations=max_iterations,
        **schedule_options,
    )
    sched_name = schedule if isinstance(schedule, str) else schedule.name
    return AppResult(
        output=dist,
        stats=stats,
        schedule=sched_name,
        extras={"iterations": len(iterations), "trace": iterations},
    )
