"""Single-source shortest path (Listing 5).

A data-centric, frontier-based SSSP: each iteration relaxes every outgoing
edge of the frontier with an atomicMin on the tentative distances, and
vertices whose distance improved form the next frontier.  The relaxation
is four lines; the load balancing -- the part that dominates SSSP's GPU
performance (Section 5.3) -- is whatever schedule the caller names,
straight from the same library the SpMV benchmark uses.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.graph import CsrGraph
from .common import AppResult
from .traversal import graph_sweep_problem, run_frontier_loop

__all__ = ["sssp", "sssp_reference", "sssp_driver"]


def _sssp_relax_arrays(edge_sources, edge_targets, edge_weights, dist, n):
    """One SSSP advance over the expanded edge frontier (vectorized).

    Mutates ``dist`` in place (the atomicMin of Listing 5) and returns
    the improved-vertex mask.
    """
    candidate = dist[edge_sources] + edge_weights
    before = dist[edge_targets].copy()
    np.minimum.at(dist, edge_targets, candidate)
    improved = dist[edge_targets] < before
    next_mask = np.zeros(n, dtype=bool)
    next_mask[edge_targets[improved]] = True
    return next_mask


def _sssp_relax_scalar(edge_sources, edge_targets, edge_weights, dist, n):
    """Flat-loop SSSP advance (jit-able).

    Three passes mirror the vectorized form's dataflow exactly:
    candidates and "before" distances are snapshotted from the
    pre-update ``dist`` (a frontier vertex may also be a target this
    iteration), the mins apply in edge order (``minimum.at``'s
    sequential semantics), and the mask derives from the post-update
    distances -- bit-for-bit equal to :func:`_sssp_relax_arrays`.
    """
    num_edges = edge_sources.shape[0]
    candidate = np.empty(num_edges)
    before = np.empty(num_edges)
    for e in range(num_edges):
        candidate[e] = dist[edge_sources[e]] + edge_weights[e]
        before[e] = dist[edge_targets[e]]
    for e in range(num_edges):
        t = edge_targets[e]
        if candidate[e] < dist[t]:
            dist[t] = candidate[e]
    next_mask = np.zeros(n, dtype=np.bool_)
    for e in range(num_edges):
        if dist[edge_targets[e]] < before[e]:
            next_mask[edge_targets[e]] = True
    return next_mask


def _sssp_example_args() -> tuple:
    sources = np.array([0, 0], dtype=np.int64)
    targets = np.array([1, 2], dtype=np.int64)
    weights = np.array([1.0, 2.0])
    dist = np.array([0.0, np.inf, np.inf])
    return sources, targets, weights, dist, 3


register_jit_warmup("sssp", _sssp_relax_scalar, _sssp_example_args)
declare_kernel_effects("sssp", "advance", scalar_fn=_sssp_relax_scalar)


def sssp_reference(graph: CsrGraph, source: int) -> np.ndarray:
    """Dijkstra oracle (binary heap, pure Python; for validation)."""
    import heapq

    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    csr = graph.csr
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        lo, hi = csr.row_offsets[u], csr.row_offsets[u + 1]
        for e in range(lo, hi):
            v = int(csr.col_indices[e])
            nd = d + float(csr.values[e])
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def sssp(
    graph: CsrGraph,
    source: int,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    max_iterations: int | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced SSSP on the simulated GPU.

    Edge weights must be non-negative.  Returns the distance array; the
    stats compose every frontier launch, one load-balanced kernel per
    iteration (Listing 5's outer loop).  ``ctx`` is the single
    execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling (default schedule:
    ``group_mapped``).
    """
    problem = SimpleNamespace(
        graph=graph, source=source, max_iterations=max_iterations
    )
    return run_app(
        "sssp",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def sssp_driver(problem, rt: Runtime) -> AppResult:
    """The registered SSSP declaration: Listing 5's relaxation, twice."""
    graph, source = problem.graph, problem.source
    max_iterations = getattr(problem, "max_iterations", None)
    if graph.num_edges and graph.csr.values.min() < 0:
        raise ValueError("SSSP requires non-negative edge weights")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    dist = np.full(n, np.inf)
    dist[source] = 0.0

    def relax(frontier, edge_sources, edge_targets, edge_weights):
        # Listing 5's body, vectorized: atomicMin(dist[neighbor], ...)
        return _sssp_relax_arrays(
            edge_sources, edge_targets, edge_weights, dist, n
        )

    def relax_edge(ctx, src, dst, weight, next_mask):
        # Scalar Listing 5 body: atomicMin, then flag on improvement.
        candidate = dist[src] + weight
        old = ctx.atomic_min(dist, dst, candidate)
        if candidate < old:
            next_mask[dst] = True

    def make_compiled(iteration, frontier, edge_sources, edge_targets,
                      edge_weights):
        return CompiledKernel(
            label="advance",
            args=(edge_sources, edge_targets, edge_weights, dist, n),
            vector_fn=_sssp_relax_arrays,
            scalar_fn=_sssp_relax_scalar,
        )

    iterations, stats = run_frontier_loop(
        graph,
        source,
        relax,
        relax_edge=relax_edge,
        make_compiled=make_compiled,
        rt=rt,
        max_iterations=max_iterations,
    )
    return AppResult(
        output=dist,
        stats=stats,
        schedule=rt.schedule_label(),
        extras={"iterations": len(iterations), "trace": iterations},
    )


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent relaxation audit over the raw CSR arrays.

    Dijkstra-free: one vectorized pass checks the triangle inequality on
    *every* edge (no relaxable edge remains -- the Bellman-Ford fixed
    point), then each sampled reached vertex must have a predecessor
    edge that *achieves* its distance.  O(nnz + samples * nnz) per call.
    """
    graph, source = problem.graph, problem.source
    csr = graph.csr
    n = graph.num_vertices
    dist = np.asarray(output, dtype=np.float64)
    if dist.shape != (n,) or dist[source] != 0.0 or np.any(dist < 0):
        return False
    row_ids = np.repeat(np.arange(n, dtype=np.int64), csr.row_lengths())
    rng = np.random.default_rng(seed)
    if csr.nnz:
        src_d = dist[row_ids]
        finite = np.isfinite(src_d)
        slack = (
            dist[csr.col_indices[finite]] - (src_d[finite] + csr.values[finite])
        )
        if np.any(slack > 1e-9):
            return False
    reached = np.nonzero(np.isfinite(dist) & (np.arange(n) != source))[0]
    if reached.size:
        for v in rng.choice(reached, size=min(samples, reached.size),
                            replace=False):
            v = int(v)
            in_edges = np.nonzero(csr.col_indices == v)[0]
            candidates = dist[row_ids[in_edges]] + csr.values[in_edges]
            if candidates.size == 0 or not np.isclose(
                candidates.min(), dist[v], rtol=1e-9, atol=1e-12
            ):
                return False
    return True


register_app(
    AppSpec(
        name="sssp",
        driver=sssp_driver,
        default_schedule="group_mapped",
        oracle=lambda p: sssp_reference(p.graph, p.source),
        sweep_problem=graph_sweep_problem,
        accepts=lambda matrix: matrix.num_rows == matrix.num_cols,
        sample_check=_sample_check,
        description="frontier-based single-source shortest paths",
    )
)
