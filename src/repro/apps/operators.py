"""Gunrock-style graph operators on the load-balancing abstraction.

The paper repeatedly cites Gunrock's data-centric operator model (advance
/ filter / compute) as the consumer of its schedules; this module builds
those operators on the public API so that new graph algorithms can be
written as operator pipelines, each step individually load-balanced:

* :func:`advance` -- expand a frontier along out-edges, applying a
  user-defined edge functor (the load-balanced neighborhood traversal at
  the heart of BFS/SSSP);
* :func:`filter` -- compact a frontier with a vertex predicate (a
  trivially balanced tile-per-thread kernel);
* :func:`compute` -- apply a vertex functor to a frontier (map).

Each operator returns the simulated :class:`KernelStats` of its launch,
so a pipeline's cost composes with ``+`` exactly like the paper's
multi-kernel algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.cost_model import KernelStats
from ..sparse.graph import CsrGraph
from .common import resolve_schedule
from .traversal import traversal_costs

__all__ = ["FrontierResult", "advance", "filter_frontier", "compute"]


@dataclass
class FrontierResult:
    """Output frontier plus the launch's simulated statistics."""

    frontier: np.ndarray  # sorted unique vertex ids
    stats: KernelStats
    extras: dict


def _frontier_array(frontier, num_vertices: int) -> np.ndarray:
    f = np.asarray(frontier, dtype=np.int64).reshape(-1)
    if f.size and (f.min() < 0 or f.max() >= num_vertices):
        raise ValueError("frontier contains out-of-range vertex ids")
    return np.unique(f)


def advance(
    graph: CsrGraph,
    frontier,
    edge_op,
    *,
    schedule: str | Schedule = "group_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> FrontierResult:
    """Expand ``frontier`` along out-edges; keep targets where ``edge_op``
    returns True.

    ``edge_op(sources, targets, weights)`` is vectorized over the
    frontier's edges and returns a boolean mask selecting the edges whose
    targets join the output frontier -- the user-defined computation of
    the abstraction's third stage.
    """
    f = _frontier_array(frontier, graph.num_vertices)
    csr = graph.csr
    degrees = csr.row_lengths()[f]
    work = WorkSpec.from_counts(degrees, label="advance")
    if work.num_atoms == 0:
        return FrontierResult(
            frontier=np.zeros(0, dtype=np.int64),
            stats=_empty_stats(spec),
            extras={"edges": 0},
        )
    sched = resolve_schedule(schedule, work, spec, launch, **schedule_options)
    stats = sched.plan(traversal_costs(spec), extras={"op": "advance"})

    starts = csr.row_offsets[f]
    total = int(degrees.sum())
    offs = np.zeros(f.size, dtype=np.int64)
    np.cumsum(degrees[:-1], out=offs[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offs, degrees)
    edge_ids = np.repeat(starts, degrees) + within
    sources = np.repeat(f, degrees)
    targets = csr.col_indices[edge_ids]
    weights = csr.values[edge_ids]

    keep = np.asarray(edge_op(sources, targets, weights), dtype=bool)
    if keep.shape != targets.shape:
        raise ValueError("edge_op must return one boolean per edge")
    out = np.unique(targets[keep])
    return FrontierResult(frontier=out, stats=stats, extras={"edges": total})


def filter_frontier(
    graph: CsrGraph,
    frontier,
    predicate,
    *,
    schedule: str | Schedule = "thread_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> FrontierResult:
    """Keep the frontier vertices where ``predicate(vertices)`` is True.

    A filter is one atom per tile -- the perfectly uniform workload where
    thread-mapped scheduling is optimal (the Figure 3 regime).
    """
    f = _frontier_array(frontier, graph.num_vertices)
    work = WorkSpec.from_counts(np.ones(f.size, dtype=np.int64), label="filter")
    c = spec.costs
    costs = WorkCosts(
        atom_cycles=c.alu,
        tile_cycles=c.global_load_coalesced + c.global_store,
        tile_reduction=False,
        atom_bytes=4.0,
        tile_bytes=5.0,
    )
    if f.size == 0:
        return FrontierResult(
            frontier=f, stats=_empty_stats(spec), extras={"kept": 0}
        )
    sched = resolve_schedule(schedule, work, spec, launch, **schedule_options)
    stats = sched.plan(costs, extras={"op": "filter"})
    keep = np.asarray(predicate(f), dtype=bool)
    if keep.shape != f.shape:
        raise ValueError("predicate must return one boolean per vertex")
    return FrontierResult(frontier=f[keep], stats=stats, extras={"kept": int(keep.sum())})


def compute(
    graph: CsrGraph,
    frontier,
    vertex_op,
    *,
    schedule: str | Schedule = "thread_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> FrontierResult:
    """Apply ``vertex_op(vertices)`` to every frontier vertex (map).

    The functor runs for its side effects (updating per-vertex state);
    the frontier passes through unchanged.
    """
    f = _frontier_array(frontier, graph.num_vertices)
    work = WorkSpec.from_counts(np.ones(f.size, dtype=np.int64), label="compute")
    c = spec.costs
    costs = WorkCosts(
        atom_cycles=2 * c.alu,
        tile_cycles=c.global_load_coalesced + c.global_store,
        tile_reduction=False,
        atom_bytes=8.0,
        tile_bytes=8.0,
    )
    if f.size == 0:
        return FrontierResult(frontier=f, stats=_empty_stats(spec), extras={})
    sched = resolve_schedule(schedule, work, spec, launch, **schedule_options)
    stats = sched.plan(costs, extras={"op": "compute"})
    vertex_op(f)
    return FrontierResult(frontier=f, stats=stats, extras={})


def _empty_stats(spec: GpuSpec) -> KernelStats:
    cycles = spec.costs.kernel_launch_cycles
    return KernelStats(
        elapsed_ms=spec.cycles_to_ms(cycles),
        makespan_cycles=cycles,
        grid_dim=1,
        block_dim=spec.warp_size,
        occupancy=0.0,
        simt_efficiency=1.0,
        utilization=0.0,
        tail_fraction=0.0,
        total_thread_cycles=0.0,
    )
