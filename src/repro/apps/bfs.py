"""Breadth-first search via the neighborhood-traversal kernel.

Level-synchronous BFS: the frontier's out-edges are relaxed each
iteration; unvisited targets get the current depth and form the next
frontier.  Built on the same traversal substrate (and therefore the same
load-balancing schedules) as SSSP -- the paper's point that data-centric
graph kernels reduce to balanced neighborhood expansion.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.graph import CsrGraph
from .common import AppResult
from .traversal import graph_sweep_problem, run_frontier_loop

__all__ = ["bfs", "bfs_reference", "bfs_driver"]

UNVISITED = -1


def _bfs_relax_arrays(edge_targets, depth, level, n):
    """One BFS advance over the expanded edge frontier (vectorized).

    Mutates ``depth`` in place and returns the next-frontier mask; the
    level is an explicit argument (not driver state) so the function is
    pure in everything but its named outputs -- the property the
    compiled engine's per-iteration kernels rely on.
    """
    fresh = depth[edge_targets] == UNVISITED
    targets = np.unique(edge_targets[fresh])
    depth[targets] = level
    next_mask = np.zeros(n, dtype=bool)
    next_mask[targets] = True
    return next_mask


def _bfs_relax_scalar(edge_targets, depth, level, n):
    """Flat-loop BFS advance (jit-able, integer-exact).

    Claims each unvisited target at first touch; the claimed set -- and
    hence ``depth`` and the mask -- equals
    :func:`_bfs_relax_arrays`'s ``unique`` exactly.
    """
    next_mask = np.zeros(n, dtype=np.bool_)
    for e in range(edge_targets.shape[0]):
        dst = edge_targets[e]
        if depth[dst] == UNVISITED:
            depth[dst] = level
            next_mask[dst] = True
    return next_mask


def _bfs_example_args() -> tuple:
    targets = np.array([1, 2], dtype=np.int64)
    depth = np.array([0, UNVISITED, UNVISITED], dtype=np.int64)
    return targets, depth, 1, 3


register_jit_warmup("bfs", _bfs_relax_scalar, _bfs_example_args)
declare_kernel_effects("bfs", "advance", scalar_fn=_bfs_relax_scalar)


def bfs_reference(graph: CsrGraph, source: int) -> np.ndarray:
    """Queue-based CPU oracle returning hop depths (-1 = unreachable)."""
    from collections import deque

    n = graph.num_vertices
    depth = np.full(n, UNVISITED, dtype=np.int64)
    depth[source] = 0
    q = deque([source])
    csr = graph.csr
    while q:
        u = q.popleft()
        lo, hi = csr.row_offsets[u], csr.row_offsets[u + 1]
        for v in csr.col_indices[lo:hi]:
            if depth[v] == UNVISITED:
                depth[v] = depth[u] + 1
                q.append(int(v))
    return depth


def bfs(
    graph: CsrGraph,
    source: int,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced BFS on the simulated GPU; returns hop depths.

    ``ctx`` is the single execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling (default schedule:
    ``group_mapped``).
    """
    problem = SimpleNamespace(graph=graph, source=source)
    return run_app(
        "bfs",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def bfs_driver(problem, rt: Runtime) -> AppResult:
    """The registered BFS declaration: the relaxation in both forms."""
    graph, source = problem.graph, problem.source
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    depth = np.full(n, UNVISITED, dtype=np.int64)
    depth[source] = 0
    level = {"d": 0}

    def relax(frontier, edge_sources, edge_targets, edge_weights):
        level["d"] += 1
        return _bfs_relax_arrays(edge_targets, depth, level["d"], n)

    def relax_edge(ctx, src, dst, weight, next_mask):
        # Scalar Listing 5 body: claim unvisited neighbors with a CAS.
        # The frontier is level-synchronous, so depth[src] is this
        # iteration's level and the two relaxation forms agree exactly.
        if depth[dst] == UNVISITED:
            old = ctx.atomic_cas(depth, dst, UNVISITED, depth[src] + 1)
            if old == UNVISITED:
                next_mask[dst] = True

    def make_compiled(iteration, frontier, edge_sources, edge_targets,
                      edge_weights):
        # Level-synchronous: iteration ``it`` assigns depth ``it + 1``,
        # so the level bakes into the args and the kernel stays free of
        # driver-state side effects.
        return CompiledKernel(
            label="advance",
            args=(edge_targets, depth, iteration + 1, n),
            vector_fn=_bfs_relax_arrays,
            scalar_fn=_bfs_relax_scalar,
        )

    iterations, stats = run_frontier_loop(
        graph, source, relax, relax_edge=relax_edge,
        make_compiled=make_compiled, rt=rt
    )
    return AppResult(
        output=depth,
        stats=stats,
        schedule=rt.schedule_label(),
        extras={"iterations": len(iterations), "trace": iterations},
    )


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent relaxation audit over the raw CSR arrays.

    The BFS level invariants are re-derived directly from the edges --
    no queue, no frontier machinery, nothing shared with the oracle.
    One vectorized pass over every edge pins the global invariant (a
    reached vertex's out-neighbors are all reached within one extra
    hop); a seeded sample of reached vertices then gets the per-vertex
    predecessor audit (a vertex at depth ``d > 0`` has a predecessor at
    exactly ``d - 1`` -- and none earlier, else its own depth would be
    smaller).  O(nnz + samples * nnz) per call.
    """
    graph, source = problem.graph, problem.source
    csr = graph.csr
    n = graph.num_vertices
    depth = np.asarray(output)
    if depth.shape != (n,) or int(depth[source]) != 0:
        return False
    row_ids = np.repeat(np.arange(n, dtype=np.int64), csr.row_lengths())
    src_d, dst_d = depth[row_ids], depth[csr.col_indices]
    reached_edge = src_d != UNVISITED
    if np.any(dst_d[reached_edge] == UNVISITED):
        return False
    if np.any(dst_d[reached_edge] > src_d[reached_edge] + 1):
        return False
    reached = np.nonzero((depth != UNVISITED) & (np.arange(n) != source))[0]
    if reached.size:
        rng = np.random.default_rng(seed)
        for u in rng.choice(reached, size=min(samples, reached.size),
                            replace=False):
            du = int(depth[u])
            pred_depths = depth[row_ids[csr.col_indices == u]]
            pred_depths = pred_depths[pred_depths != UNVISITED]
            if pred_depths.size == 0 or int(pred_depths.min()) != du - 1:
                return False
    return True


register_app(
    AppSpec(
        name="bfs",
        driver=bfs_driver,
        default_schedule="group_mapped",
        oracle=lambda p: bfs_reference(p.graph, p.source),
        sweep_problem=graph_sweep_problem,
        match=lambda output, expected: bool(np.array_equal(output, expected)),
        accepts=lambda matrix: matrix.num_rows == matrix.num_cols,
        sample_check=_sample_check,
        description="level-synchronous breadth-first search",
    )
)
