"""Breadth-first search via the neighborhood-traversal kernel.

Level-synchronous BFS: the frontier's out-edges are relaxed each
iteration; unvisited targets get the current depth and form the next
frontier.  Built on the same traversal substrate (and therefore the same
load-balancing schedules) as SSSP -- the paper's point that data-centric
graph kernels reduce to balanced neighborhood expansion.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..gpusim.arch import GpuSpec, V100
from ..sparse.graph import CsrGraph
from .common import AppResult
from .traversal import run_frontier_loop

__all__ = ["bfs", "bfs_reference"]

UNVISITED = -1


def bfs_reference(graph: CsrGraph, source: int) -> np.ndarray:
    """Queue-based CPU oracle returning hop depths (-1 = unreachable)."""
    from collections import deque

    n = graph.num_vertices
    depth = np.full(n, UNVISITED, dtype=np.int64)
    depth[source] = 0
    q = deque([source])
    csr = graph.csr
    while q:
        u = q.popleft()
        lo, hi = csr.row_offsets[u], csr.row_offsets[u + 1]
        for v in csr.col_indices[lo:hi]:
            if depth[v] == UNVISITED:
                depth[v] = depth[u] + 1
                q.append(int(v))
    return depth


def bfs(
    graph: CsrGraph,
    source: int,
    *,
    schedule: str | Schedule = "group_mapped",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced BFS on the simulated GPU; returns hop depths."""
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for {n} vertices")
    depth = np.full(n, UNVISITED, dtype=np.int64)
    depth[source] = 0
    level = {"d": 0}

    def relax(frontier, edge_sources, edge_targets, edge_weights):
        level["d"] += 1
        fresh = depth[edge_targets] == UNVISITED
        targets = np.unique(edge_targets[fresh])
        depth[targets] = level["d"]
        next_mask = np.zeros(n, dtype=bool)
        next_mask[targets] = True
        return next_mask

    iterations, stats = run_frontier_loop(
        graph,
        source,
        relax,
        schedule=schedule,
        spec=spec,
        launch=launch,
        **schedule_options,
    )
    sched_name = schedule if isinstance(schedule, str) else schedule.name
    return AppResult(
        output=depth,
        stats=stats,
        schedule=sched_name,
        extras={"iterations": len(iterations), "trace": iterations},
    )
