"""Triangle counting via per-edge neighbor-list intersection.

The workload behind Logarithmic Radix Binning in the related work: tiles
are vertices, atoms are edges, and each atom's work is an intersection of
two sorted adjacency lists -- per-atom costs proportional to the degree
sum, making this the stress test for atom-cost-aware schedules like LRB.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..sparse.csr import CsrMatrix
from .common import AppResult, resolve_schedule

__all__ = ["triangle_count", "triangle_count_reference"]


def _upper_triangle(adjacency: CsrMatrix) -> CsrMatrix:
    """Keep edges (u, v) with v > u (each triangle counted once)."""
    keep_rows = []
    keep_cols = []
    lengths = np.zeros(adjacency.num_rows, dtype=np.int64)
    for u in range(adjacency.num_rows):
        cols, _ = adjacency.row_slice(u)
        sel = np.unique(cols[cols > u])
        keep_rows.append(u)
        keep_cols.append(sel)
        lengths[u] = sel.size
    offsets = np.zeros(adjacency.num_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    col_indices = (
        np.concatenate(keep_cols) if keep_cols else np.zeros(0, dtype=np.int64)
    )
    return CsrMatrix.from_arrays(
        offsets, col_indices, np.ones(col_indices.size), adjacency.shape
    )


def triangle_count_reference(adjacency: CsrMatrix) -> int:
    """Oracle via the dense trace formula ``tr(A^3) / 6`` on the
    symmetrized, binarized adjacency."""
    d = (adjacency.to_dense() != 0).astype(np.float64)
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0.0)
    return int(round(np.trace(d @ d @ d) / 6.0))


def _intersection_costs(spec: GpuSpec, mean_degree: float) -> WorkCosts:
    c = spec.costs
    # Each atom (edge u->v) walks min(deg(u), deg(v)) ~ mean_degree items
    # of two sorted lists.
    per_item = 2 * c.global_load_coalesced + c.alu
    return WorkCosts(
        atom_cycles=max(1.0, mean_degree) * per_item,
        tile_cycles=c.global_load_coalesced,
        tile_reduction=True,
    )


def triangle_count(
    adjacency: CsrMatrix,
    *,
    schedule: str | Schedule = "lrb",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced triangle count of an (interpreted-as-)undirected graph.

    The input is symmetrized and binarized internally; self-loops are
    dropped.  Defaults to the LRB schedule per the related work's usage.
    """
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("triangle counting requires a square adjacency")
    # Symmetrize/binarize, then reduce to the upper triangle.
    dense_free = _symmetrized(adjacency)
    upper = _upper_triangle(dense_free)

    # Count: for each directed edge (u, v) in the upper triangle,
    # |N+(u) /\ N+(v)| using sorted-list intersections.
    count = 0
    for u in range(upper.num_rows):
        nu, _ = upper.row_slice(u)
        for v in nu:
            nv, _ = upper.row_slice(int(v))
            count += np.intersect1d(nu, nv, assume_unique=True).size

    work = WorkSpec.from_csr(upper, label="triangles")
    mean_deg = upper.nnz / max(1, upper.num_rows)
    sched = resolve_schedule(
        schedule, work, spec, launch, matrix=upper, **schedule_options
    )
    stats = sched.plan(
        _intersection_costs(spec, mean_deg), extras={"app": "triangle_count"}
    )
    return AppResult(
        output=int(count),
        stats=stats,
        schedule=sched.name,
        extras={"upper_edges": upper.nnz},
    )


def _symmetrized(adjacency: CsrMatrix) -> CsrMatrix:
    from ..sparse.convert import coo_to_csr, csr_to_coo
    from ..sparse.coo import CooMatrix

    coo = csr_to_coo(adjacency)
    keep = coo.rows != coo.cols
    rows = np.concatenate([coo.rows[keep], coo.cols[keep]])
    cols = np.concatenate([coo.cols[keep], coo.rows[keep]])
    sym = CooMatrix.from_arrays(
        rows, cols, np.ones(rows.size), adjacency.shape
    ).sum_duplicates()
    ones = CooMatrix.from_arrays(sym.rows, sym.cols, np.ones(sym.nnz), sym.shape)
    return coo_to_csr(ones)
