"""Triangle counting via per-edge neighbor-list intersection.

The workload behind Logarithmic Radix Binning in the related work: tiles
are vertices, atoms are edges, and each atom's work is an intersection of
two sorted adjacency lists -- per-atom costs proportional to the degree
sum, making this the stress test for atom-cost-aware schedules like LRB.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.csr import CsrMatrix
from .common import AppResult, tile_charges

__all__ = ["triangle_count", "triangle_count_reference", "triangle_count_driver"]


def _upper_triangle(adjacency: CsrMatrix) -> CsrMatrix:
    """Keep edges (u, v) with v > u (each triangle counted once).

    Vectorized: the strict upper triangle is a mask over the expanded
    (row, col) pairs; a ``unique`` over linearized keys dedupes *and*
    sorts, so each row's neighbor list comes out sorted-unique (the
    invariant the intersection kernels rely on).
    """
    n_rows, n_cols = adjacency.shape
    rows = np.repeat(
        np.arange(n_rows, dtype=np.int64), adjacency.row_lengths()
    )
    cols = adjacency.col_indices
    mask = cols > rows
    keys = np.unique(rows[mask] * np.int64(n_cols) + cols[mask])
    sel_rows = keys // n_cols
    sel_cols = keys % n_cols
    lengths = np.bincount(sel_rows, minlength=n_rows).astype(np.int64)
    offsets = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return CsrMatrix.from_arrays(
        offsets, sel_cols, np.ones(sel_cols.size), adjacency.shape
    )


def _triangle_count_arrays(row_offsets, col_indices, num_rows, num_cols):
    """Vectorized intersection counting over the upper triangle's arrays.

    A triangle (u, v, w) with u < v < w is an edge (u, v) plus a wedge w
    in N(v) with (u, w) also an edge.  Expand every (edge, wedge)
    candidate and test membership with one searchsorted over the
    linearized (row, col) keys -- sorted because rows are sorted and
    each row's neighbor list is sorted-unique.  O(P log E) for P
    candidate pairs, no per-row Python loop.
    """
    offs, cols = row_offsets, col_indices
    if cols.size == 0:
        return 0
    n = np.int64(num_cols)
    deg = np.diff(offs)
    u_of_edge = np.repeat(np.arange(num_rows, dtype=np.int64), deg)
    wedge_counts = deg[cols]  # |N(v)| per edge (u, v)
    if int(wedge_counts.sum()) == 0:
        return 0
    keys = u_of_edge * n + cols
    # Chunk the edge range so peak scratch stays bounded: heavy-tailed
    # graphs expand to Theta(sum_of_wedges) candidates, which at full
    # corpus scale must not materialize all at once.
    budget = 1 << 22
    count = 0
    bounds = np.concatenate(([0], np.cumsum(wedge_counts)))
    lo = 0
    while lo < wedge_counts.size:
        hi = int(np.searchsorted(bounds, bounds[lo] + budget, side="left"))
        hi = max(hi, lo + 1)
        wc = wedge_counts[lo:hi]
        total = int(wc.sum())
        if total == 0:
            lo = hi
            continue
        starts = np.zeros(wc.size, dtype=np.int64)
        np.cumsum(wc[:-1], out=starts[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, wc)
        w = cols[np.repeat(offs[cols[lo:hi]], wc) + within]
        queries = np.repeat(u_of_edge[lo:hi], wc) * n + w
        pos = np.searchsorted(keys, queries)
        pos_clipped = np.minimum(pos, keys.size - 1)
        found = (pos < keys.size) & (keys[pos_clipped] == queries)
        count += int(found.sum())
        lo = hi
    return count


def _triangle_count_scalar(row_offsets, col_indices, num_rows, num_cols):
    """Flat-loop triangle count (jit-able): classic two-pointer sorted
    intersection per upper-triangle edge.  Integer-exact, so it agrees
    with :func:`_triangle_count_arrays` by construction."""
    count = 0
    for u in range(num_rows):
        for e in range(row_offsets[u], row_offsets[u + 1]):
            v = col_indices[e]
            i = row_offsets[u]
            j = row_offsets[v]
            i_end = row_offsets[u + 1]
            j_end = row_offsets[v + 1]
            while i < i_end and j < j_end:
                cu = col_indices[i]
                cv = col_indices[j]
                if cu == cv:
                    count += 1
                    i += 1
                    j += 1
                elif cu < cv:
                    i += 1
                else:
                    j += 1
    return count


def _triangle_count_example_args() -> tuple:
    # The 3-cycle's upper triangle: edges (0,1), (0,2), (1,2).
    offsets = np.array([0, 2, 3, 3], dtype=np.int64)
    cols = np.array([1, 2, 2], dtype=np.int64)
    return offsets, cols, 3, 3


register_jit_warmup(
    "intersect", _triangle_count_scalar, _triangle_count_example_args
)
declare_kernel_effects(
    "triangle_count", "intersect", scalar_fn=_triangle_count_scalar
)


def triangle_count_reference(adjacency: CsrMatrix) -> int:
    """Oracle via the dense trace formula ``tr(A^3) / 6`` on the
    symmetrized, binarized adjacency."""
    d = (adjacency.to_dense() != 0).astype(np.float64)
    d = np.maximum(d, d.T)
    np.fill_diagonal(d, 0.0)
    return int(round(np.trace(d @ d @ d) / 6.0))


def _intersection_costs(spec: GpuSpec, mean_degree: float) -> WorkCosts:
    c = spec.costs
    # Each atom (edge u->v) walks min(deg(u), deg(v)) ~ mean_degree items
    # of two sorted lists.
    per_item = 2 * c.global_load_coalesced + c.alu
    return WorkCosts(
        atom_cycles=max(1.0, mean_degree) * per_item,
        tile_cycles=c.global_load_coalesced,
        tile_reduction=True,
    )


def triangle_count(
    adjacency: CsrMatrix,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced triangle count of an (interpreted-as-)undirected graph.

    The input is symmetrized and binarized internally; self-loops are
    dropped.  Defaults to the LRB schedule per the related work's usage.
    ``ctx`` is the single execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling.
    """
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("triangle counting requires a square adjacency")
    problem = SimpleNamespace(adjacency=adjacency)
    return run_app(
        "triangle_count",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def triangle_count_driver(problem, rt: Runtime) -> AppResult:
    """The registered triangle-count declaration.

    Count: for each directed edge (u, v) in the upper triangle,
    ``|N+(u) /\\ N+(v)|`` using sorted-list intersections.
    """
    adjacency = problem.adjacency
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("triangle counting requires a square adjacency")
    # Symmetrize/binarize, then reduce to the upper triangle (host prep).
    upper = _upper_triangle(_symmetrized(adjacency))

    work = WorkSpec.from_csr(upper, label="triangles")
    mean_deg = upper.nnz / max(1, upper.num_rows)
    costs = _intersection_costs(rt.spec, mean_deg)
    sched = rt.schedule_for(work, matrix=upper, kernel="intersect", costs=costs)

    def compute() -> int:
        return _triangle_count_arrays(
            upper.row_offsets, upper.col_indices, upper.num_rows, upper.num_cols
        )

    def kernel():
        total = np.zeros(1)
        col_indices = upper.col_indices
        atom_c, tile_c = tile_charges(sched, costs)

        def body(ctx):
            for u in sched.tiles(ctx):
                nu, _ = upper.row_slice(int(u))
                found = 0
                n = 0
                for e in sched.atoms(ctx, u):
                    nv, _ = upper.row_slice(int(col_indices[e]))
                    found += np.intersect1d(nu, nv, assume_unique=True).size
                    n += 1
                ctx.charge(n * atom_c + tile_c)
                if found:
                    ctx.atomic_add(total, 0, found)

        return body, lambda: int(total[0])

    output, stats = rt.run_launch(
        sched,
        costs,
        compute=compute,
        kernel=kernel,
        compiled=CompiledKernel(
            label="intersect",
            args=(
                upper.row_offsets, upper.col_indices,
                upper.num_rows, upper.num_cols,
            ),
            vector_fn=_triangle_count_arrays,
            scalar_fn=_triangle_count_scalar,
        ),
        kernel_label="intersect",
        extras={"app": "triangle_count"},
    )
    return AppResult(
        output=output,
        stats=stats,
        schedule=sched.name,
        extras={"upper_edges": upper.nnz},
    )


def _symmetrized(adjacency: CsrMatrix) -> CsrMatrix:
    from ..sparse.convert import coo_to_csr, csr_to_coo
    from ..sparse.coo import CooMatrix

    coo = csr_to_coo(adjacency)
    keep = coo.rows != coo.cols
    rows = np.concatenate([coo.rows[keep], coo.cols[keep]])
    cols = np.concatenate([coo.cols[keep], coo.rows[keep]])
    sym = CooMatrix.from_arrays(
        rows, cols, np.ones(rows.size), adjacency.shape
    ).sum_duplicates()
    ones = CooMatrix.from_arrays(sym.rows, sym.cols, np.ones(sym.nnz), sym.shape)
    return coo_to_csr(ones)


register_app(
    AppSpec(
        name="triangle_count",
        driver=triangle_count_driver,
        default_schedule="lrb",
        oracle=lambda p: triangle_count_reference(p.adjacency),
        sweep_problem=lambda matrix, seed: SimpleNamespace(adjacency=matrix),
        match=lambda output, expected: int(output) == int(expected),
        accepts=lambda matrix: matrix.num_rows == matrix.num_cols,
        description="per-edge neighbor-intersection triangle counting",
    )
)
