"""PageRank by power iteration over load-balanced SpMV.

Demonstrates kernel *fusion of reuse*: the whole algorithm is repeated
calls of the SpMV primitive already built on the abstraction, so PageRank
inherits every schedule (and the heuristic selector) with zero extra
load-balancing code -- the composability the paper's design goals call
for ("compose new load-balanced primitives from existing APIs").
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..gpusim.arch import GpuSpec, V100
from ..sparse.csr import CsrMatrix
from ..sparse.convert import csr_transpose
from .common import AppResult
from .spmv import spmv

__all__ = ["pagerank", "pagerank_reference"]


def _pull_matrix(adjacency: CsrMatrix) -> CsrMatrix:
    """Column-normalized transpose: rank flows along in-edges (pull step)."""
    out_deg = adjacency.row_lengths().astype(np.float64)
    inv = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1), 0.0)
    row_ids = np.repeat(
        np.arange(adjacency.num_rows, dtype=np.int64), adjacency.row_lengths()
    )
    normalized = CsrMatrix.from_arrays(
        adjacency.row_offsets,
        adjacency.col_indices,
        adjacency.values * 0 + inv[row_ids],
        adjacency.shape,
        validate=False,
    )
    return csr_transpose(normalized)


def pagerank_reference(
    adjacency: CsrMatrix, damping: float = 0.85, tol: float = 1e-10, max_iter: int = 200
) -> np.ndarray:
    """Dense-power-iteration oracle."""
    n = adjacency.num_rows
    m = _pull_matrix(adjacency).to_dense()
    dangling = adjacency.row_lengths() == 0
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new = damping * (m @ rank + rank[dangling].sum() / n) + (1 - damping) / n
        if np.abs(new - rank).sum() < tol:
            return new
        rank = new
    return rank


def pagerank(
    adjacency: CsrMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    schedule: str | Schedule = "merge_path",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced PageRank; one SpMV launch per iteration."""
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("PageRank requires a square adjacency matrix")
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    n = adjacency.num_rows
    pull = _pull_matrix(adjacency)
    dangling = adjacency.row_lengths() == 0
    rank = np.full(n, 1.0 / n)
    total_stats = None
    iterations = 0
    for iterations in range(1, max_iter + 1):
        step = spmv(
            pull, rank, schedule=schedule, spec=spec, launch=launch,
            **schedule_options,
        )
        total_stats = step.stats if total_stats is None else total_stats + step.stats
        new = damping * (step.output + rank[dangling].sum() / n) + (1 - damping) / n
        delta = float(np.abs(new - rank).sum())
        rank = new
        if delta < tol:
            break
    assert total_stats is not None
    sched_name = schedule if isinstance(schedule, str) else schedule.name
    return AppResult(
        output=rank,
        stats=total_stats,
        schedule=sched_name,
        extras={"iterations": iterations},
    )
