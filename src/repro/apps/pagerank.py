"""PageRank by power iteration over load-balanced SpMV.

Demonstrates kernel *fusion of reuse*: the whole algorithm is repeated
calls of the SpMV primitive already built on the abstraction, so PageRank
inherits every schedule (and the heuristic selector) with zero extra
load-balancing code -- the composability the paper's design goals call
for ("compose new load-balanced primitives from existing APIs").  Since
the SpMV declaration is engine-agnostic, PageRank also inherits both
engines for free: the driver simply re-runs the SpMV driver on the same
runtime every iteration.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..engine import (
    AppSpec,
    Runtime,
    declare_kernel_effects,
    register_app,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.convert import csr_transpose
from ..sparse.csr import CsrMatrix
from .common import AppResult
from .spmv import spmv_driver

__all__ = ["pagerank", "pagerank_reference", "pagerank_driver"]

# PageRank declares no kernel of its own: each iteration re-runs the
# SpMV driver, so its race behaviour *is* SpMV's.
declare_kernel_effects("pagerank", "spmv", delegates_to="spmv")


def _pull_matrix(adjacency: CsrMatrix) -> CsrMatrix:
    """Column-normalized transpose: rank flows along in-edges (pull step)."""
    out_deg = adjacency.row_lengths().astype(np.float64)
    inv = np.where(out_deg > 0, 1.0 / np.maximum(out_deg, 1), 0.0)
    row_ids = np.repeat(
        np.arange(adjacency.num_rows, dtype=np.int64), adjacency.row_lengths()
    )
    normalized = CsrMatrix.from_arrays(
        adjacency.row_offsets,
        adjacency.col_indices,
        adjacency.values * 0 + inv[row_ids],
        adjacency.shape,
        validate=False,
    )
    return csr_transpose(normalized)


def pagerank_reference(
    adjacency: CsrMatrix, damping: float = 0.85, tol: float = 1e-10, max_iter: int = 200
) -> np.ndarray:
    """Dense-power-iteration oracle."""
    n = adjacency.num_rows
    m = _pull_matrix(adjacency).to_dense()
    dangling = adjacency.row_lengths() == 0
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new = damping * (m @ rank + rank[dangling].sum() / n) + (1 - damping) / n
        if np.abs(new - rank).sum() < tol:
            return new
        rank = new
    return rank


def pagerank(
    adjacency: CsrMatrix,
    *,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced PageRank; one SpMV launch per iteration.

    ``ctx`` is the single execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling (default schedule:
    ``merge_path``).
    """
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("PageRank requires a square adjacency matrix")
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    problem = SimpleNamespace(
        adjacency=adjacency, damping=damping, tol=tol, max_iter=max_iter
    )
    return run_app(
        "pagerank",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def pagerank_driver(problem, rt: Runtime) -> AppResult:
    """The registered PageRank declaration: SpMV power iteration."""
    adjacency = problem.adjacency
    damping = getattr(problem, "damping", 0.85)
    tol = getattr(problem, "tol", 1e-10)
    max_iter = getattr(problem, "max_iter", 200)
    if adjacency.num_rows != adjacency.num_cols:
        raise ValueError("PageRank requires a square adjacency matrix")
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    n = adjacency.num_rows
    pull = _pull_matrix(adjacency)
    dangling = adjacency.row_lengths() == 0
    rank = np.full(n, 1.0 / n)
    total_stats = None
    iterations = 0
    for iterations in range(1, max_iter + 1):
        step = spmv_driver(
            SimpleNamespace(matrix=pull, x=rank, locality=False), rt
        )
        total_stats = step.stats if total_stats is None else total_stats + step.stats
        new = damping * (step.output + rank[dangling].sum() / n) + (1 - damping) / n
        delta = float(np.abs(new - rank).sum())
        rank = new
        if delta < tol:
            break
    assert total_stats is not None
    return AppResult(
        output=rank,
        stats=total_stats,
        schedule=rt.schedule_label(),
        extras={"iterations": iterations},
    )


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent sampled fixed-point audit over the raw adjacency.

    For sampled vertices the PageRank equation is re-derived from the
    *forward* adjacency arrays (in-contributions found by scanning the
    column indices) -- no pull-matrix transpose, no dense power
    iteration, nothing shared with either the driver or the oracle:

        rank[v] = d * (sum_{u -> v} rank[u] / outdeg[u]
                       + sum_{u dangling} rank[u] / n) + (1 - d) / n

    Plus the global invariants: ranks positive, summing to ~1.
    O(samples * nnz) per call.
    """
    adjacency = problem.adjacency
    damping = getattr(problem, "damping", 0.85)
    n = adjacency.num_rows
    rank = np.asarray(output, dtype=np.float64)
    if rank.shape != (n,) or np.any(rank <= 0):
        return False
    if not np.isclose(rank.sum(), 1.0, rtol=1e-6, atol=1e-9):
        return False
    out_deg = adjacency.row_lengths().astype(np.float64)
    dangling_mass = float(rank[out_deg == 0].sum()) / n
    row_ids = np.repeat(np.arange(n, dtype=np.int64), adjacency.row_lengths())
    rng = np.random.default_rng(seed)
    for v in rng.choice(n, size=min(samples, n), replace=False):
        v = int(v)
        preds = row_ids[adjacency.col_indices == v]
        pulled = float((rank[preds] / out_deg[preds]).sum())
        expected = damping * (pulled + dangling_mass) + (1.0 - damping) / n
        if not np.isclose(rank[v], expected, rtol=1e-4, atol=1e-8):
            return False
    return True


register_app(
    AppSpec(
        name="pagerank",
        driver=pagerank_driver,
        default_schedule="merge_path",
        oracle=lambda p: pagerank_reference(
            p.adjacency,
            getattr(p, "damping", 0.85),
            getattr(p, "tol", 1e-10),
            getattr(p, "max_iter", 200),
        ),
        sweep_problem=lambda matrix, seed: SimpleNamespace(
            adjacency=matrix, damping=0.85, tol=1e-8, max_iter=100
        ),
        match=lambda output, expected: bool(
            np.allclose(output, expected, rtol=1e-5, atol=1e-8)
        ),
        accepts=lambda matrix: matrix.num_rows == matrix.num_cols,
        sample_check=_sample_check,
        description="PageRank power iteration composed from SpMV",
    )
)
