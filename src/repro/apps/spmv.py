"""Sparse matrix-vector multiplication: ``y = A @ x`` (Listing 3).

The paper's benchmark application.  The computation itself is four lines;
everything else is load balancing -- which is exactly the disparity the
framework removes.  Under this abstraction the same kernel body runs under
*every* schedule in the library (a one-identifier change, Section 6.2).
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..gpusim.simt import launch_interpreted
from ..gpusim.cost_model import kernel_stats_from_thread_cycles
from ..sparse.csr import CsrMatrix
from .common import AppResult, check_dense_vector, resolve_schedule, spmv_costs

__all__ = ["spmv", "spmv_reference"]


def spmv_reference(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Pure NumPy oracle (no scheduling, no simulation)."""
    x = check_dense_vector(x, matrix.num_cols)
    y = np.zeros(matrix.num_rows)
    row_ids = np.repeat(
        np.arange(matrix.num_rows, dtype=np.int64), matrix.row_lengths()
    )
    np.add.at(y, row_ids, matrix.values * x[matrix.col_indices])
    return y


def spmv(
    matrix: CsrMatrix,
    x: np.ndarray,
    *,
    schedule: str | Schedule = "merge_path",
    spec: GpuSpec = V100,
    engine: str = "vector",
    launch: LaunchParams | None = None,
    locality: bool = False,
    **schedule_options,
) -> AppResult:
    """Load-balanced SpMV on the simulated GPU.

    Parameters
    ----------
    schedule:
        A registered schedule name, ``"heuristic"`` (Section 6.2 selector),
        or a pre-built :class:`~repro.core.schedule.Schedule`.
    engine:
        ``"vector"`` (corpus scale) or ``"simt"`` (thread-by-thread ground
        truth; small inputs only).
    locality:
        Enable the future-work cache model for the x-vector gathers
        (:mod:`repro.gpusim.cache`); off by default to match the paper's
        locality-agnostic evaluation.
    """
    x = check_dense_vector(x, matrix.num_cols)
    work = WorkSpec.from_csr(matrix)
    sched = resolve_schedule(
        schedule, work, spec, launch, matrix=matrix, **schedule_options
    )
    if engine == "vector":
        return _spmv_vector(matrix, x, sched, locality)
    if engine == "simt":
        return _spmv_simt(matrix, x, sched)
    raise ValueError(f"unknown engine {engine!r}")


def _spmv_vector(
    matrix: CsrMatrix, x: np.ndarray, sched: Schedule, locality: bool = False
) -> AppResult:
    y = spmv_reference(matrix, x)
    working_set = float(x.nbytes) if locality else None
    stats = sched.plan(
        spmv_costs(sched.spec, gather_working_set_bytes=working_set),
        extras={"app": "spmv", "locality": locality},
    )
    return AppResult(output=y, stats=stats, schedule=sched.name)


def _spmv_simt(matrix: CsrMatrix, x: np.ndarray, sched: Schedule) -> AppResult:
    """Execute the Listing 3 kernel body thread-by-thread.

    The kernel is written exactly in the paper's pattern: a nested
    range-based for loop over ``config.tiles()`` / ``config.atoms(row)``.
    Schedules that split tiles across threads (merge-path, nonzero-split)
    or across lanes (warp/block/group/lrb) combine partial sums with an
    atomic -- the simulator linearizes atomics, so the result is exact up
    to float summation order.
    """
    spec = sched.spec
    costs = spmv_costs(spec)
    y = np.zeros(matrix.num_rows)
    values, col_indices = matrix.values, matrix.col_indices
    atom_c = costs.atom_total(spec) + getattr(sched, "abstraction_tax", 0.0)
    tile_c = costs.tile_cycles + spec.costs.loop_overhead

    owns_fully = getattr(sched, "owns_tile_fully", None)

    def kernel(ctx):
        # -- Listing 3: consume rows, then atoms, through the schedule. --
        for row in sched.tiles(ctx):
            acc = 0.0
            n = 0
            for nz in sched.atoms(ctx, row):
                acc += values[nz] * x[col_indices[nz]]
                n += 1
            ctx.charge(n * atom_c + tile_c)
            if n == 0 and owns_fully is None:
                continue
            if owns_fully is not None and owns_fully(ctx, row):
                y[row] = acc
            elif owns_fully is not None:
                ctx.atomic_add(y, row, acc)
            else:
                # Lane-parallel schedules: each lane contributes a partial.
                ctx.atomic_add(y, row, acc)

    result = launch_interpreted(
        kernel, sched.launch.grid_dim, sched.launch.block_dim, (), spec
    )
    stats = kernel_stats_from_thread_cycles(
        result.thread_cycles,
        sched.launch.grid_dim,
        sched.launch.block_dim,
        spec,
        setup_cycles=sched.setup_cycles(costs),
        extras={"app": "spmv", "schedule": sched.name, "engine": "simt"},
    )
    return AppResult(output=y, stats=stats, schedule=sched.name)
