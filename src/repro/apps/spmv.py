"""Sparse matrix-vector multiplication: ``y = A @ x`` (Listing 3).

The paper's benchmark application.  The computation itself is four lines;
everything else is load balancing -- which is exactly the disparity the
framework removes.  Under this abstraction the same kernel body runs under
*every* schedule in the library (a one-identifier change, Section 6.2),
and -- since the execution-engine refactor -- under every *engine* too:
the declaration below is consumed unchanged by the vectorized planner
path and the thread-by-thread SIMT interpreter.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule
from ..core.work import WorkSpec
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    input_vector,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.csr import CsrMatrix
from .common import AppResult, check_dense_vector, spmv_costs, tile_charges

__all__ = ["spmv", "spmv_reference", "spmv_driver"]


def _spmv_arrays(row_offsets, col_indices, values, x):
    """The whole SpMV over flat arrays (shared by oracle and engines)."""
    num_rows = row_offsets.shape[0] - 1
    y = np.zeros(num_rows)
    row_ids = np.repeat(
        np.arange(num_rows, dtype=np.int64), np.diff(row_offsets)
    )
    np.add.at(y, row_ids, values * x[col_indices])
    return y


def _spmv_scalar(row_offsets, col_indices, values, x):
    """Flat-loop SpMV (jit-able); float ops in the same order as
    :func:`_spmv_arrays`' scatter-add, so results agree bit-for-bit."""
    num_rows = row_offsets.shape[0] - 1
    y = np.zeros(num_rows)
    for row in range(num_rows):
        acc = 0.0
        for nz in range(row_offsets[row], row_offsets[row + 1]):
            acc += values[nz] * x[col_indices[nz]]
        y[row] = acc
    return y


def _spmv_example_args() -> tuple:
    offsets = np.array([0, 1, 2], dtype=np.int64)
    cols = np.array([0, 1], dtype=np.int64)
    vals = np.array([1.0, 2.0])
    return offsets, cols, vals, np.array([1.0, 1.0])


register_jit_warmup("spmv", _spmv_scalar, _spmv_example_args)
declare_kernel_effects("spmv", "spmv", scalar_fn=_spmv_scalar)


def spmv_reference(matrix: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """Pure NumPy oracle (no scheduling, no simulation)."""
    x = check_dense_vector(x, matrix.num_cols)
    return _spmv_arrays(matrix.row_offsets, matrix.col_indices, matrix.values, x)


def spmv(
    matrix: CsrMatrix,
    x: np.ndarray,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    locality: bool = False,
    **schedule_options,
) -> AppResult:
    """Load-balanced SpMV on the simulated GPU.

    Parameters
    ----------
    ctx:
        An :class:`~repro.engine.context.ExecutionContext` -- the single
        execution-selection argument (engine, device spec, schedule
        policy, launch override).  The remaining selection kwargs are the
        deprecated pre-context spelling; passing both is an error.
    schedule:
        A registered schedule name, ``"heuristic"`` (Section 6.2 selector),
        ``"oracle_best"``, or a pre-built
        :class:`~repro.core.schedule.Schedule` (default: ``merge_path``).
    engine:
        A registered engine name (``"vector"`` corpus scale, ``"simt"``
        thread-by-thread ground truth, ``"multi_gpu"`` device
        partitioning; see :func:`repro.engine.available_engines`).
    locality:
        Enable the future-work cache model for the x-vector gathers
        (:mod:`repro.gpusim.cache`); off by default to match the paper's
        locality-agnostic evaluation.
    """
    x = check_dense_vector(x, matrix.num_cols)
    problem = SimpleNamespace(matrix=matrix, x=x, locality=locality)
    return run_app(
        "spmv",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def spmv_driver(problem, rt: Runtime) -> AppResult:
    """The registered SpMV declaration: work, costs, result, kernel body."""
    matrix, x = problem.matrix, problem.x
    locality = getattr(problem, "locality", False)
    work = WorkSpec.from_csr(matrix)
    working_set = float(x.nbytes) if locality else None
    costs = spmv_costs(rt.spec, gather_working_set_bytes=working_set)
    sched = rt.schedule_for(work, matrix=matrix, kernel="spmv", costs=costs)

    def compute() -> np.ndarray:
        return spmv_reference(matrix, x)

    def kernel():
        """Listing 3's kernel body, executed thread-by-thread.

        Schedules that split tiles across threads (merge-path,
        nonzero-split) or across lanes (warp/block/group/lrb) combine
        partial sums with an atomic -- the simulator linearizes atomics,
        so the result is exact up to float summation order.
        """
        y = np.zeros(matrix.num_rows)
        values, col_indices = matrix.values, matrix.col_indices
        atom_c, tile_c = tile_charges(sched, costs)
        owns_fully = getattr(sched, "owns_tile_fully", None)

        def body(ctx):
            # -- Listing 3: consume rows, then atoms, through the schedule. --
            for row in sched.tiles(ctx):
                acc = 0.0
                n = 0
                for nz in sched.atoms(ctx, row):
                    acc += values[nz] * x[col_indices[nz]]
                    n += 1
                ctx.charge(n * atom_c + tile_c)
                if n == 0 and owns_fully is None:
                    continue
                if owns_fully is not None and owns_fully(ctx, row):
                    y[row] = acc
                else:
                    # Lane-parallel / partial-tile threads contribute partials.
                    ctx.atomic_add(y, row, acc)

        return body, lambda: y

    output, stats = rt.run_launch(
        sched,
        costs,
        compute=compute,
        kernel=kernel,
        compiled=CompiledKernel(
            label="spmv",
            args=(matrix.row_offsets, matrix.col_indices, matrix.values, x),
            vector_fn=_spmv_arrays,
            scalar_fn=_spmv_scalar,
        ),
        kernel_label="spmv",
        extras={"app": "spmv", "locality": locality},
    )
    return AppResult(output=output, stats=stats, schedule=sched.name)


def _sweep_problem(matrix: CsrMatrix, seed: int) -> SimpleNamespace:
    return SimpleNamespace(
        matrix=matrix, x=input_vector(matrix.num_cols, seed), locality=False
    )


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent sampled dense check: re-derive a few output rows
    directly from the CSR slices (per-row ``dot``), a different reduction
    path than both the oracle's and compute()'s scatter-add."""
    matrix, x = problem.matrix, problem.x
    y = np.asarray(output, dtype=np.float64)
    if y.shape != (matrix.num_rows,):
        return False
    rng = np.random.default_rng(seed)
    rows = rng.choice(matrix.num_rows, size=min(samples, matrix.num_rows),
                      replace=False)
    for r in rows:
        lo, hi = matrix.row_offsets[r], matrix.row_offsets[r + 1]
        expected = float(
            np.dot(matrix.values[lo:hi], x[matrix.col_indices[lo:hi]])
        )
        if not np.isclose(y[r], expected, rtol=1e-9, atol=1e-12):
            return False
    return True


def _cub_baseline(problem, spec):
    from ..baselines.cub_spmv import cub_spmv

    return cub_spmv(problem.matrix, problem.x, spec)


def _cusparse_baseline(problem, spec):
    from ..baselines.cusparse_spmv import cusparse_spmv

    return cusparse_spmv(problem.matrix, problem.x, spec)


register_app(
    AppSpec(
        name="spmv",
        driver=spmv_driver,
        default_schedule="merge_path",
        oracle=lambda p: spmv_reference(p.matrix, p.x),
        sweep_problem=_sweep_problem,
        sample_check=_sample_check,
        baselines={"cub": _cub_baseline, "cusparse": _cusparse_baseline},
        description="sparse matrix-vector multiply y = A @ x (Listing 3)",
    )
)
