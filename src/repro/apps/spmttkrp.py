"""Sparse MTTKRP (matricized tensor times Khatri-Rao product).

The tensor kernel of the related work (Nisa et al.; F-COO): for a 3-way
tensor X and factor matrices B (J x R), C (K x R),

    M[i, :] += X[i, j, k] * (B[j, :] * C[k, :])     for every nonzero.

In the abstraction's vocabulary this is *identical in shape* to SpMV:
mode-0 slices are tiles, tensor nonzeros are atoms, and every schedule
in the library applies unchanged -- the whole point of decoupling
mapping from computation (and tensors are among the heaviest-skewed
workloads in practice, so the choice matters).
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..sparse.tensor import SparseTensor3
from .common import AppResult, resolve_schedule

__all__ = ["spmttkrp", "spmttkrp_reference", "mttkrp_costs"]


def mttkrp_costs(spec: GpuSpec, rank: int) -> WorkCosts:
    """Per-nonzero: gather B and C rows (R elements each), R FMAs, and an
    accumulation into M's row."""
    c = spec.costs
    return WorkCosts(
        atom_cycles=rank * (2 * c.global_load_random + 2 * c.fma),
        tile_cycles=rank * c.global_store,
        tile_reduction=True,
        atom_bytes=12.0 + 16.0 * rank,  # coords + two factor-row gathers
        tile_bytes=8.0 * rank,  # M row store
    )


def spmttkrp_reference(
    tensor: SparseTensor3, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Vectorized NumPy oracle."""
    b, c = _check_factors(tensor, b, c)
    m = np.zeros((tensor.shape[0], b.shape[1]))
    contrib = tensor.values[:, None] * b[tensor.j] * c[tensor.k]
    np.add.at(m, tensor.i, contrib)
    return m


def spmttkrp(
    tensor: SparseTensor3,
    b: np.ndarray,
    c: np.ndarray,
    *,
    schedule: str | Schedule = "merge_path",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced MTTKRP on the simulated GPU.

    ``schedule`` may be any registry name -- including ``nonzero_split``,
    which reproduces F-COO's equal-nonzeros-per-thread behaviour as a
    *schedule* instead of a storage format.
    """
    b, c = _check_factors(tensor, b, c)
    work = WorkSpec.from_counts(tensor.slice_counts(), label="mttkrp")
    sched = resolve_schedule(schedule, work, spec, launch, **schedule_options)
    m = spmttkrp_reference(tensor, b, c)
    stats = sched.plan(
        mttkrp_costs(spec, b.shape[1]), extras={"app": "spmttkrp"}
    )
    return AppResult(output=m, stats=stats, schedule=sched.name)


def _check_factors(tensor: SparseTensor3, b, c) -> tuple[np.ndarray, np.ndarray]:
    b = np.ascontiguousarray(b, dtype=np.float64)
    c = np.ascontiguousarray(c, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != tensor.shape[1]:
        raise ValueError(
            f"factor B must be ({tensor.shape[1]} x R), got {b.shape}"
        )
    if c.ndim != 2 or c.shape[0] != tensor.shape[2]:
        raise ValueError(
            f"factor C must be ({tensor.shape[2]} x R), got {c.shape}"
        )
    if b.shape[1] != c.shape[1]:
        raise ValueError(f"factor ranks disagree: {b.shape[1]} vs {c.shape[1]}")
    return b, c
