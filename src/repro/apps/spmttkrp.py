"""Sparse MTTKRP (matricized tensor times Khatri-Rao product).

The tensor kernel of the related work (Nisa et al.; F-COO): for a 3-way
tensor X and factor matrices B (J x R), C (K x R),

    M[i, :] += X[i, j, k] * (B[j, :] * C[k, :])     for every nonzero.

In the abstraction's vocabulary this is *identical in shape* to SpMV:
mode-0 slices are tiles, tensor nonzeros are atoms, and every schedule
in the library applies unchanged -- the whole point of decoupling
mapping from computation (and tensors are among the heaviest-skewed
workloads in practice, so the choice matters).
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    input_matrix,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.csr import CsrMatrix
from ..sparse.tensor import SparseTensor3
from .common import AppResult, tile_charges

__all__ = ["spmttkrp", "spmttkrp_reference", "mttkrp_costs", "spmttkrp_driver"]

#: Factor rank used when deriving a sweep problem from a corpus matrix.
SWEEP_RANK = 4


def mttkrp_costs(spec: GpuSpec, rank: int) -> WorkCosts:
    """Per-nonzero: gather B and C rows (R elements each), R FMAs, and an
    accumulation into M's row."""
    c = spec.costs
    return WorkCosts(
        atom_cycles=rank * (2 * c.global_load_random + 2 * c.fma),
        tile_cycles=rank * c.global_store,
        tile_reduction=True,
        atom_bytes=12.0 + 16.0 * rank,  # coords + two factor-row gathers
        tile_bytes=8.0 * rank,  # M row store
    )


def _mttkrp_arrays(slice_offsets, jj, kk, values, b, c):
    """The whole MTTKRP over flat arrays (shared by oracle and engines).

    ``slice_offsets`` is the mode-0 CSR-style extent array; the tensor's
    sortedness invariant makes ``repeat(arange, diff)`` exactly its
    ``i`` coordinates.
    """
    num_slices = slice_offsets.shape[0] - 1
    m = np.zeros((num_slices, b.shape[1]))
    ii = np.repeat(
        np.arange(num_slices, dtype=np.int64), np.diff(slice_offsets)
    )
    np.add.at(m, ii, values[:, None] * b[jj] * c[kk])
    return m


def _mttkrp_scalar(slice_offsets, jj, kk, values, b, c):
    """Flat-loop MTTKRP (jit-able); multiply order ``(v * b) * c`` and
    nz-ascending adds match :func:`_mttkrp_arrays` bit-for-bit."""
    num_slices = slice_offsets.shape[0] - 1
    rank = b.shape[1]
    m = np.zeros((num_slices, rank))
    for i in range(num_slices):
        for nz in range(slice_offsets[i], slice_offsets[i + 1]):
            v = values[nz]
            j = jj[nz]
            k = kk[nz]
            for r in range(rank):
                m[i, r] += v * b[j, r] * c[k, r]
    return m


def _mttkrp_example_args() -> tuple:
    offsets = np.array([0, 1, 2], dtype=np.int64)
    jj = np.array([0, 1], dtype=np.int64)
    kk = np.array([1, 0], dtype=np.int64)
    vals = np.array([1.0, 2.0])
    return offsets, jj, kk, vals, np.ones((2, 2)), np.ones((2, 2))


register_jit_warmup("mttkrp", _mttkrp_scalar, _mttkrp_example_args)
declare_kernel_effects("spmttkrp", "mttkrp", scalar_fn=_mttkrp_scalar)


def spmttkrp_reference(
    tensor: SparseTensor3, b: np.ndarray, c: np.ndarray
) -> np.ndarray:
    """Vectorized NumPy oracle."""
    b, c = _check_factors(tensor, b, c)
    return _mttkrp_arrays(
        tensor.slice_offsets(), tensor.j, tensor.k, tensor.values, b, c
    )


def spmttkrp(
    tensor: SparseTensor3,
    b: np.ndarray,
    c: np.ndarray,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced MTTKRP on the simulated GPU.

    ``schedule`` may be any registry name -- including ``nonzero_split``,
    which reproduces F-COO's equal-nonzeros-per-thread behaviour as a
    *schedule* instead of a storage format.  ``ctx`` is the single
    execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling.
    """
    b, c = _check_factors(tensor, b, c)
    problem = SimpleNamespace(tensor=tensor, b=b, c=c)
    return run_app(
        "spmttkrp",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def spmttkrp_driver(problem, rt: Runtime) -> AppResult:
    """The registered MTTKRP declaration.

    The tensor's coordinates are sorted by mode-0 index (the
    :class:`SparseTensor3` invariant), so atom ids index the coordinate
    arrays directly and each slice's atoms form a contiguous range.
    """
    tensor, b, c = problem.tensor, problem.b, problem.c
    b, c = _check_factors(tensor, b, c)
    rank = b.shape[1]
    work = WorkSpec.from_counts(tensor.slice_counts(), label="mttkrp")
    # The mode-0 matricization pattern (slices x J), zero-copy over the
    # tensor's arrays: gives schedule='heuristic' the shape statistics it
    # needs, same as the matrix apps.
    proxy = CsrMatrix.from_arrays(
        tensor.slice_offsets(),
        tensor.j,
        tensor.values,
        (tensor.shape[0], tensor.shape[1]),
        validate=False,
    )
    costs = mttkrp_costs(rt.spec, rank)
    sched = rt.schedule_for(work, matrix=proxy, kernel="mttkrp", costs=costs)

    def compute() -> np.ndarray:
        return spmttkrp_reference(tensor, b, c)

    def kernel():
        m = np.zeros((tensor.shape[0], rank))
        values, jj, kk = tensor.values, tensor.j, tensor.k
        atom_c, tile_c = tile_charges(sched, costs)

        def body(ctx):
            for tile in sched.tiles(ctx):
                acc = np.zeros(rank)
                n = 0
                for nz in sched.atoms(ctx, tile):
                    acc += values[nz] * b[jj[nz]] * c[kk[nz]]
                    n += 1
                ctx.charge(n * atom_c + tile_c)
                if n:
                    # Partial-row accumulation: m[tile] += acc.
                    ctx.atomic_add(m, tile, acc)

        return body, lambda: m

    output, stats = rt.run_launch(
        sched,
        costs,
        compute=compute,
        kernel=kernel,
        compiled=CompiledKernel(
            label="mttkrp",
            args=(
                tensor.slice_offsets(), tensor.j, tensor.k, tensor.values, b, c,
            ),
            vector_fn=_mttkrp_arrays,
            scalar_fn=_mttkrp_scalar,
        ),
        kernel_label="mttkrp",
        extras={"app": "spmttkrp"},
    )
    return AppResult(output=output, stats=stats, schedule=sched.name)


def _check_factors(tensor: SparseTensor3, b, c) -> tuple[np.ndarray, np.ndarray]:
    b = np.ascontiguousarray(b, dtype=np.float64)
    c = np.ascontiguousarray(c, dtype=np.float64)
    if b.ndim != 2 or b.shape[0] != tensor.shape[1]:
        raise ValueError(
            f"factor B must be ({tensor.shape[1]} x R), got {b.shape}"
        )
    if c.ndim != 2 or c.shape[0] != tensor.shape[2]:
        raise ValueError(
            f"factor C must be ({tensor.shape[2]} x R), got {c.shape}"
        )
    if b.shape[1] != c.shape[1]:
        raise ValueError(f"factor ranks disagree: {b.shape[1]} vs {c.shape[1]}")
    return b, c


def _sweep_problem(matrix: CsrMatrix | SparseTensor3, seed: int) -> SimpleNamespace:
    """Derive the MTTKRP problem from one corpus entry.

    A native :class:`SparseTensor3` dataset (a *tensor corpus*) is used
    as-is; a CSR matrix is lifted into a 3-way tensor: its sparsity
    pattern supplies (i, j) and the third mode is a deterministic
    function of the coordinates, so the tensor inherits the matrix's
    row-degree skew (the quantity the schedules balance).  Either way
    the deterministic factor matrices come from the tensor's shape and
    the sweep seed.
    """
    if isinstance(matrix, SparseTensor3):
        tensor = matrix
    else:
        depth = max(1, min(32, matrix.num_cols))
        rows = np.repeat(
            np.arange(matrix.num_rows, dtype=np.int64), matrix.row_lengths()
        )
        k = (rows + matrix.col_indices) % depth
        tensor = SparseTensor3.from_arrays(
            rows,
            matrix.col_indices,
            k,
            matrix.values,
            (matrix.num_rows, matrix.num_cols, depth),
        )
    return SimpleNamespace(
        tensor=tensor,
        b=input_matrix(tensor.shape[1], SWEEP_RANK, seed),
        c=input_matrix(tensor.shape[2], SWEEP_RANK, seed + 1),
    )


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent sampled dense check: re-derive sampled (slice, rank)
    entries of M by walking the slice's nonzeros scalar-by-scalar --
    independent of the oracle's vectorized scatter-add."""
    tensor, b, c = problem.tensor, problem.b, problem.c
    m = np.asarray(output, dtype=np.float64)
    rank = b.shape[1]
    if m.shape != (tensor.shape[0], rank):
        return False
    if tensor.shape[0] == 0 or rank == 0:  # nothing to sample
        return True
    offs = tensor.slice_offsets()
    rng = np.random.default_rng(seed)
    slices = rng.integers(0, tensor.shape[0], size=samples)
    ranks = rng.integers(0, rank, size=samples)
    for i, r in zip(slices, ranks):
        lo, hi = int(offs[i]), int(offs[i + 1])
        expected = 0.0
        for nz in range(lo, hi):
            expected += (
                float(tensor.values[nz])
                * float(b[tensor.j[nz], r])
                * float(c[tensor.k[nz], r])
            )
        if not np.isclose(m[i, r], expected, rtol=1e-9, atol=1e-12):
            return False
    return True


register_app(
    AppSpec(
        name="spmttkrp",
        driver=spmttkrp_driver,
        default_schedule="merge_path",
        oracle=lambda p: spmttkrp_reference(p.tensor, p.b, p.c),
        sweep_problem=_sweep_problem,
        sample_check=_sample_check,
        description="sparse tensor MTTKRP over mode-0 slices",
    )
)
