"""Sparse general matrix-matrix multiplication: ``C = A @ B`` (sparse x sparse).

The paper sketches SpGEMM as a natural extension (Section 5.3): Gustavson's
row-wise formulation in two load-balanced kernels plus an allocation stage:

1. **Count kernel** -- for each row of A, the number of intermediate
   products (an upper bound on C's row length), load-balanced over A's
   tiles/atoms;
2. allocation of C from the prefix-summed counts (host side);
3. **Compute kernel** -- multiply-accumulate of the intermediate products,
   load-balanced over the *product* counts (a second WorkSpec, since the
   per-atom cost of pass 1 is wildly uneven -- this is exactly the kind of
   nested irregularity the abstraction exists for).

Both kernels share whatever schedule the caller picks.
"""

from __future__ import annotations

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..gpusim.arch import GpuSpec, V100
from ..sparse.convert import coo_to_csr
from ..sparse.coo import CooMatrix
from ..sparse.csr import CsrMatrix
from .common import AppResult, resolve_schedule

__all__ = ["spgemm", "spgemm_reference"]


def _count_costs(spec: GpuSpec) -> WorkCosts:
    c = spec.costs
    # Per A-atom: load k, load B's row extent; per tile: store the count.
    return WorkCosts(
        atom_cycles=c.global_load_coalesced + c.global_load_random + c.alu,
        tile_cycles=c.global_store,
        tile_reduction=True,
        atom_bytes=8.0,  # column index + B row extent
        tile_bytes=4.0,
    )


def _compute_costs(spec: GpuSpec) -> WorkCosts:
    c = spec.costs
    # Per intermediate product: load B value/index (gather), FMA, and a
    # hashed/atomic accumulation into C's row.
    return WorkCosts(
        atom_cycles=2 * c.global_load_random + c.fma,
        tile_cycles=c.global_store,
        tile_reduction=True,
        atom_atomic=True,
        atom_bytes=24.0,  # B value/index gather + C accumulation traffic
        tile_bytes=12.0,
    )


def spgemm_reference(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Pure NumPy Gustavson expansion oracle (duplicates summed)."""
    _check(a, b)
    products = _expand_products(a, b)
    coo = CooMatrix.from_arrays(
        products["rows"], products["cols"], products["vals"],
        (a.num_rows, b.num_cols),
    ).sum_duplicates()
    return coo_to_csr(coo)


def _expand_products(a: CsrMatrix, b: CsrMatrix) -> dict:
    """Expand all intermediate products a_ik * b_kj, vectorized."""
    k_per_atom = a.col_indices  # the middle index of each A atom
    counts = b.row_lengths()[k_per_atom]  # products contributed per A atom
    total = int(counts.sum())
    a_rows = np.repeat(
        np.arange(a.num_rows, dtype=np.int64), a.row_lengths()
    )
    prod_rows = np.repeat(a_rows, counts)
    base = np.repeat(b.row_offsets[k_per_atom], counts)
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    b_idx = base + within
    return {
        "rows": prod_rows,
        "cols": b.col_indices[b_idx],
        "vals": np.repeat(a.values, counts) * b.values[b_idx],
        "counts_per_atom": counts,
    }


def spgemm(
    a: CsrMatrix,
    b: CsrMatrix,
    *,
    schedule: str | Schedule = "merge_path",
    spec: GpuSpec = V100,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Two-pass load-balanced SpGEMM on the simulated GPU.

    Returns the sparse product as a :class:`CsrMatrix`; ``stats`` is the
    sequential composition of the two kernels' stats.
    """
    _check(a, b)
    # ---- Pass 1: count intermediate products per row of A. ----
    work_count = WorkSpec.from_csr(a, label="spgemm-count")
    sched1 = resolve_schedule(
        schedule, work_count, spec, launch, matrix=a, **schedule_options
    )
    stats1 = sched1.plan(_count_costs(spec), extras={"app": "spgemm/count"})

    products = _expand_products(a, b)
    counts_per_atom = products["counts_per_atom"]
    a_rows = np.repeat(np.arange(a.num_rows, dtype=np.int64), a.row_lengths())
    per_row = np.zeros(a.num_rows, dtype=np.int64)
    np.add.at(per_row, a_rows, counts_per_atom)

    # ---- Allocation stage (host): prefix-sum the counts. ----
    work_compute = WorkSpec.from_counts(per_row, label="spgemm-compute")

    # ---- Pass 2: multiply-accumulate over the products. ----
    sched2 = resolve_schedule(
        schedule, work_compute, spec, None, matrix=a, **schedule_options
    )
    stats2 = sched2.plan(_compute_costs(spec), extras={"app": "spgemm/compute"})

    coo = CooMatrix.from_arrays(
        products["rows"], products["cols"], products["vals"],
        (a.num_rows, b.num_cols),
    ).sum_duplicates()
    c = coo_to_csr(coo)
    return AppResult(
        output=c,
        stats=stats1 + stats2,
        schedule=sched1.name,
        extras={"intermediate_products": int(counts_per_atom.sum())},
    )


def _check(a: CsrMatrix, b: CsrMatrix) -> None:
    if a.num_cols != b.num_rows:
        raise ValueError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
