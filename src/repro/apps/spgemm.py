"""Sparse general matrix-matrix multiplication: ``C = A @ B`` (sparse x sparse).

The paper sketches SpGEMM as a natural extension (Section 5.3): Gustavson's
row-wise formulation in two load-balanced kernels plus an allocation stage:

1. **Count kernel** -- for each row of A, the number of intermediate
   products (an upper bound on C's row length), load-balanced over A's
   tiles/atoms;
2. allocation of C from the prefix-summed counts (host side);
3. **Compute kernel** -- multiply-accumulate of the intermediate products,
   load-balanced over the *product* counts (a second WorkSpec, since the
   per-atom cost of pass 1 is wildly uneven -- this is exactly the kind of
   nested irregularity the abstraction exists for).

Both kernels share whatever schedule the caller picks, and both are
described to the engine layer as ordinary launches -- the two-pass
structure lives in the driver, the execution strategy in the engine.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.convert import coo_to_csr, csr_transpose
from ..sparse.coo import CooMatrix
from ..sparse.csr import CsrMatrix
from .common import AppResult, tile_charges

__all__ = ["spgemm", "spgemm_reference", "spgemm_driver"]


def _count_costs(spec: GpuSpec) -> WorkCosts:
    c = spec.costs
    # Per A-atom: load k, load B's row extent; per tile: store the count.
    return WorkCosts(
        atom_cycles=c.global_load_coalesced + c.global_load_random + c.alu,
        tile_cycles=c.global_store,
        tile_reduction=True,
        atom_bytes=8.0,  # column index + B row extent
        tile_bytes=4.0,
    )


def _compute_costs(spec: GpuSpec) -> WorkCosts:
    c = spec.costs
    # Per intermediate product: load B value/index (gather), FMA, and a
    # hashed/atomic accumulation into C's row.
    return WorkCosts(
        atom_cycles=2 * c.global_load_random + c.fma,
        tile_cycles=c.global_store,
        tile_reduction=True,
        atom_atomic=True,
        atom_bytes=24.0,  # B value/index gather + C accumulation traffic
        tile_bytes=12.0,
    )


def _spgemm_count_arrays(a_row_offsets, a_col_indices, b_row_lengths):
    """Pass-1 product counts over flat arrays (exact integers)."""
    num_rows = a_row_offsets.shape[0] - 1
    per_row = np.zeros(num_rows, dtype=np.int64)
    a_rows = np.repeat(
        np.arange(num_rows, dtype=np.int64), np.diff(a_row_offsets)
    )
    np.add.at(per_row, a_rows, b_row_lengths[a_col_indices])
    return per_row


def _spgemm_count_scalar(a_row_offsets, a_col_indices, b_row_lengths):
    """Flat-loop count pass (jit-able, integer-exact)."""
    num_rows = a_row_offsets.shape[0] - 1
    per_row = np.zeros(num_rows, dtype=np.int64)
    for row in range(num_rows):
        total = 0
        for nz in range(a_row_offsets[row], a_row_offsets[row + 1]):
            total += b_row_lengths[a_col_indices[nz]]
        per_row[row] = total
    return per_row


def _spgemm_count_example_args() -> tuple:
    offsets = np.array([0, 1, 2], dtype=np.int64)
    cols = np.array([0, 1], dtype=np.int64)
    return offsets, cols, np.array([1, 2], dtype=np.int64)


register_jit_warmup("count", _spgemm_count_scalar, _spgemm_count_example_args)
declare_kernel_effects("spgemm", "count", scalar_fn=_spgemm_count_scalar)
# Pass 2 has no scalar form (its sort-based CSR assembly is the
# computation), so its effects are declared: the hashed per-row
# accumulation is a data-dependent scatter under every schedule.
declare_kernel_effects("spgemm", "compute", writes={"c": "scatter"})


def _spgemm_compute_arrays(prod_rows, prod_cols, prod_vals, num_rows, num_cols):
    """Pass-2 accumulation of the expanded products into CSR.

    Array-path only (no scalar form): the duplicate-summing CSR assembly
    is the computation, and its sort-based reduction has no flat-loop
    equivalent with identical float ordering -- so the compiled engine
    keeps this launch on the vectorized path even under numba.
    """
    coo = CooMatrix.from_arrays(
        prod_rows, prod_cols, prod_vals, (num_rows, num_cols)
    ).sum_duplicates()
    return coo_to_csr(coo)


def spgemm_reference(a: CsrMatrix, b: CsrMatrix) -> CsrMatrix:
    """Pure NumPy Gustavson expansion oracle (duplicates summed)."""
    _check(a, b)
    products = _expand_products(a, b)
    coo = CooMatrix.from_arrays(
        products["rows"], products["cols"], products["vals"],
        (a.num_rows, b.num_cols),
    ).sum_duplicates()
    return coo_to_csr(coo)


def _expand_products(a: CsrMatrix, b: CsrMatrix) -> dict:
    """Expand all intermediate products a_ik * b_kj, vectorized."""
    k_per_atom = a.col_indices  # the middle index of each A atom
    counts = b.row_lengths()[k_per_atom]  # products contributed per A atom
    total = int(counts.sum())
    a_rows = np.repeat(
        np.arange(a.num_rows, dtype=np.int64), a.row_lengths()
    )
    prod_rows = np.repeat(a_rows, counts)
    base = np.repeat(b.row_offsets[k_per_atom], counts)
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    b_idx = base + within
    return {
        "rows": prod_rows,
        "cols": b.col_indices[b_idx],
        "vals": np.repeat(a.values, counts) * b.values[b_idx],
        "counts_per_atom": counts,
    }


def spgemm(
    a: CsrMatrix,
    b: CsrMatrix,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Two-pass load-balanced SpGEMM on the simulated GPU.

    Returns the sparse product as a :class:`CsrMatrix`; ``stats`` is the
    sequential composition of the two kernels' stats.  ``ctx`` is the
    single execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); a
    :class:`~repro.core.policy.PerKernelPolicy` can route the two passes
    (kernel labels ``count`` and ``compute``) to different schedules.
    """
    _check(a, b)
    problem = SimpleNamespace(a=a, b=b)
    return run_app(
        "spgemm",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def spgemm_driver(problem, rt: Runtime) -> AppResult:
    """The registered SpGEMM declaration: count, allocate, compute."""
    a, b = problem.a, problem.b
    _check(a, b)
    b_row_lengths = b.row_lengths()
    a_rows = np.repeat(np.arange(a.num_rows, dtype=np.int64), a.row_lengths())

    # ---- Pass 1: count intermediate products per row of A. ----
    work_count = WorkSpec.from_csr(a, label="spgemm-count")
    costs1 = _count_costs(rt.spec)
    sched1 = rt.schedule_for(work_count, matrix=a, kernel="count", costs=costs1)

    def compute_counts() -> np.ndarray:
        return _spgemm_count_arrays(a.row_offsets, a.col_indices, b_row_lengths)

    def count_kernel():
        counts = np.zeros(a.num_rows)
        col_indices = a.col_indices
        atom_c, tile_c = tile_charges(sched1, costs1)

        def body(ctx):
            for row in sched1.tiles(ctx):
                n = 0
                found = 0
                for nz in sched1.atoms(ctx, row):
                    found += int(b_row_lengths[col_indices[nz]])
                    n += 1
                ctx.charge(n * atom_c + tile_c)
                if n:
                    ctx.atomic_add(counts, row, found)

        return body, lambda: counts.astype(np.int64)

    per_row, stats1 = rt.run_launch(
        sched1,
        costs1,
        compute=compute_counts,
        kernel=count_kernel,
        compiled=CompiledKernel(
            label="count",
            args=(a.row_offsets, a.col_indices, b_row_lengths),
            vector_fn=_spgemm_count_arrays,
            scalar_fn=_spgemm_count_scalar,
        ),
        kernel_label="count",
        extras={"app": "spgemm/count"},
    )

    # ---- Allocation stage (host): prefix-sum the counts, expand. ----
    products = _expand_products(a, b)
    work_compute = WorkSpec.from_counts(per_row, label="spgemm-compute")

    # ---- Pass 2: multiply-accumulate over the products. ----
    costs2 = _compute_costs(rt.spec)
    sched2 = rt.schedule_for(
        work_compute, matrix=a, launch=None, kernel="compute", costs=costs2
    )

    def compute_product() -> CsrMatrix:
        return _spgemm_compute_arrays(
            products["rows"], products["cols"], products["vals"],
            a.num_rows, b.num_cols,
        )

    def compute_kernel():
        # Product atoms are row-sorted (they inherit A's atom order), so
        # atom ids index the expanded arrays directly; accumulation goes
        # into hashed per-row accumulators -- the GPU's shared-memory
        # hash-table pattern -- so scratch is O(nnz(C row)), never
        # O(num_cols) per row.  ``defaultdict(float)`` keeps the
        # interpreter's atomic read-modify-write semantics intact.
        from collections import defaultdict

        row_acc = [defaultdict(float) for _ in range(a.num_rows)]
        cols, vals = products["cols"], products["vals"]
        atom_c, tile_c = tile_charges(sched2, costs2)

        def body(ctx):
            for row in sched2.tiles(ctx):
                n = 0
                acc = row_acc[row]
                for p in sched2.atoms(ctx, row):
                    ctx.atomic_add(acc, int(cols[p]), vals[p])
                    n += 1
                ctx.charge(n * atom_c + tile_c)

        def finalize() -> CsrMatrix:
            rows_nz: list[np.ndarray] = []
            cols_nz: list[np.ndarray] = []
            vals_nz: list[np.ndarray] = []
            for row, acc in enumerate(row_acc):
                if not acc:
                    continue
                keys = np.fromiter(acc.keys(), dtype=np.int64, count=len(acc))
                order = np.argsort(keys)
                rows_nz.append(np.full(keys.size, row, dtype=np.int64))
                cols_nz.append(keys[order])
                vals_nz.append(
                    np.fromiter(acc.values(), dtype=np.float64, count=len(acc))[order]
                )
            if not rows_nz:
                return CsrMatrix.empty((a.num_rows, b.num_cols))
            coo = CooMatrix.from_arrays(
                np.concatenate(rows_nz),
                np.concatenate(cols_nz),
                np.concatenate(vals_nz),
                (a.num_rows, b.num_cols),
            )
            return coo_to_csr(coo)

        return body, finalize

    c, stats2 = rt.run_launch(
        sched2,
        costs2,
        compute=compute_product,
        kernel=compute_kernel,
        compiled=CompiledKernel(
            label="compute",
            args=(
                products["rows"], products["cols"], products["vals"],
                a.num_rows, b.num_cols,
            ),
            vector_fn=_spgemm_compute_arrays,
            scalar_fn=None,
        ),
        kernel_label="compute",
        extras={"app": "spgemm/compute"},
    )

    return AppResult(
        output=c,
        stats=stats1 + stats2,
        schedule=sched1.name,
        extras={"intermediate_products": int(products["counts_per_atom"].sum())},
    )


def _check(a: CsrMatrix, b: CsrMatrix) -> None:
    if a.num_cols != b.num_rows:
        raise ValueError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )


def _sweep_problem(matrix: CsrMatrix, seed: int) -> SimpleNamespace:
    # Square matrices multiply themselves; rectangular ones multiply
    # their transpose (always dimension-compatible).
    b = matrix if matrix.num_rows == matrix.num_cols else csr_transpose(matrix)
    return SimpleNamespace(a=matrix, b=b)


register_app(
    AppSpec(
        name="spgemm",
        driver=spgemm_driver,
        default_schedule="merge_path",
        oracle=lambda p: spgemm_reference(p.a, p.b),
        sweep_problem=_sweep_problem,
        description="two-pass Gustavson SpGEMM (count, allocate, compute)",
    )
)
