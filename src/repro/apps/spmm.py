"""Sparse-matrix dense-matrix multiplication: ``C = A @ B`` (Listing 4).

The paper's demonstration of composability: SpMM is SpMV's kernel wrapped
in one extra loop over the columns of the dense matrix B -- the schedule
and the work definition are untouched.  This mirrors Yang et al.'s
observation that merge-path extends from SpMV to SpMM with the same load
balancing; here the extension costs one line instead of a rewrite.
"""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from ..core.schedule import LaunchParams, Schedule, WorkCosts
from ..core.work import WorkSpec
from ..engine import (
    AppSpec,
    CompiledKernel,
    Runtime,
    declare_kernel_effects,
    input_matrix,
    register_app,
    register_jit_warmup,
    run_app,
)
from ..gpusim.arch import GpuSpec
from ..sparse.csr import CsrMatrix
from .common import AppResult, spmv_costs, tile_charges

__all__ = ["spmm", "spmm_reference", "spmm_costs", "spmm_driver"]

#: Dense-column count used when deriving an SpMM sweep problem from a
#: corpus matrix (kept small so corpus sweeps stay proportionate).
SWEEP_B_COLS = 4


def spmm_costs(spec: GpuSpec, n_cols: int) -> WorkCosts:
    """SpMM repeats the SpMV inner product once per B column."""
    base = spmv_costs(spec)
    return WorkCosts(
        atom_cycles=base.atom_cycles * n_cols,
        tile_cycles=base.tile_cycles * n_cols,
        tile_reduction=True,
        # The A value/index loads amortize over B's columns; B-row gathers
        # and C stores scale with them.
        atom_bytes=12.0 + 8.0 * n_cols,
        tile_bytes=4.0 + 8.0 * n_cols,
    )


def _spmm_arrays(row_offsets, col_indices, values, b):
    """The whole SpMM over flat arrays (shared by oracle and engines)."""
    num_rows = row_offsets.shape[0] - 1
    c = np.zeros((num_rows, b.shape[1]))
    row_ids = np.repeat(
        np.arange(num_rows, dtype=np.int64), np.diff(row_offsets)
    )
    np.add.at(c, row_ids, values[:, None] * b[col_indices])
    return c


def _spmm_scalar(row_offsets, col_indices, values, b):
    """Flat-loop SpMM (jit-able); per-entry add order matches the
    scatter-add of :func:`_spmm_arrays` bit-for-bit."""
    num_rows = row_offsets.shape[0] - 1
    n_cols = b.shape[1]
    c = np.zeros((num_rows, n_cols))
    for row in range(num_rows):
        for col in range(n_cols):
            acc = 0.0
            for nz in range(row_offsets[row], row_offsets[row + 1]):
                acc += values[nz] * b[col_indices[nz], col]
            c[row, col] = acc
    return c


def _spmm_example_args() -> tuple:
    offsets = np.array([0, 1, 2], dtype=np.int64)
    cols = np.array([0, 1], dtype=np.int64)
    vals = np.array([1.0, 2.0])
    return offsets, cols, vals, np.ones((2, 2))


register_jit_warmup("spmm", _spmm_scalar, _spmm_example_args)
declare_kernel_effects("spmm", "spmm", scalar_fn=_spmm_scalar)


def spmm_reference(matrix: CsrMatrix, b: np.ndarray) -> np.ndarray:
    """Pure NumPy oracle."""
    b = _check_b(matrix, b)
    return _spmm_arrays(matrix.row_offsets, matrix.col_indices, matrix.values, b)


def spmm(
    matrix: CsrMatrix,
    b: np.ndarray,
    *,
    ctx=None,
    schedule: str | Schedule | None = None,
    spec: GpuSpec | None = None,
    engine: str | None = None,
    launch: LaunchParams | None = None,
    **schedule_options,
) -> AppResult:
    """Load-balanced SpMM on the simulated GPU.

    ``ctx`` is the single execution-selection argument
    (:class:`~repro.engine.context.ExecutionContext`); the loose kwargs
    are the deprecated pre-context spelling.
    """
    b = _check_b(matrix, b)
    problem = SimpleNamespace(matrix=matrix, b=b)
    return run_app(
        "spmm",
        problem,
        ctx=ctx,
        schedule=schedule,
        engine=engine,
        spec=spec,
        launch=launch,
        **schedule_options,
    )


def spmm_driver(problem, rt: Runtime) -> AppResult:
    """The registered SpMM declaration."""
    matrix, b = problem.matrix, problem.b
    n_cols = b.shape[1]
    work = WorkSpec.from_csr(matrix)
    costs = spmm_costs(rt.spec, n_cols)
    sched = rt.schedule_for(work, matrix=matrix, kernel="spmm", costs=costs)

    def compute() -> np.ndarray:
        return spmm_reference(matrix, b)

    def kernel():
        """Listing 4's kernel: Listing 3 plus a loop over B's columns."""
        c = np.zeros((matrix.num_rows, n_cols))
        values, col_indices = matrix.values, matrix.col_indices
        atom_c, tile_c = tile_charges(sched, costs)
        owns_fully = getattr(sched, "owns_tile_fully", None)

        def body(ctx):
            for row in sched.tiles(ctx):
                atoms = list(sched.atoms(ctx, row))
                # Listing 4: the new loop over B's columns wraps the SpMV body.
                for col in range(n_cols):
                    acc = 0.0
                    for nz in atoms:
                        acc += values[nz] * b[col_indices[nz], col]
                    if owns_fully is not None and owns_fully(ctx, row):
                        c[row, col] = acc
                    else:
                        ctx.atomic_add(c[:, col], row, acc)
                ctx.charge(len(atoms) * atom_c + tile_c)

        return body, lambda: c

    output, stats = rt.run_launch(
        sched,
        costs,
        compute=compute,
        kernel=kernel,
        compiled=CompiledKernel(
            label="spmm",
            args=(matrix.row_offsets, matrix.col_indices, matrix.values, b),
            vector_fn=_spmm_arrays,
            scalar_fn=_spmm_scalar,
        ),
        kernel_label="spmm",
        extras={"app": "spmm"},
    )
    return AppResult(output=output, stats=stats, schedule=sched.name)


def _check_b(matrix: CsrMatrix, b) -> np.ndarray:
    arr = np.ascontiguousarray(b, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != matrix.num_cols:
        raise ValueError(
            f"B must be a dense matrix with {matrix.num_cols} rows, "
            f"got shape {np.shape(b)}"
        )
    return arr


def _sample_check(problem, output, seed: int, samples: int = 8) -> bool:
    """Independent sampled dense check: re-derive sampled (row, column)
    entries of C from the CSR slice and B column directly (per-entry
    ``dot``), independent of the oracle's scatter-add."""
    matrix, b = problem.matrix, problem.b
    c = np.asarray(output, dtype=np.float64)
    if c.shape != (matrix.num_rows, b.shape[1]):
        return False
    if matrix.num_rows == 0 or b.shape[1] == 0:  # nothing to sample
        return True
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, matrix.num_rows, size=samples)
    cols = rng.integers(0, b.shape[1], size=samples)
    for r, j in zip(rows, cols):
        lo, hi = matrix.row_offsets[r], matrix.row_offsets[r + 1]
        expected = float(
            np.dot(matrix.values[lo:hi], b[matrix.col_indices[lo:hi], j])
        )
        if not np.isclose(c[r, j], expected, rtol=1e-9, atol=1e-12):
            return False
    return True


register_app(
    AppSpec(
        name="spmm",
        driver=spmm_driver,
        default_schedule="merge_path",
        oracle=lambda p: spmm_reference(p.matrix, p.b),
        sweep_problem=lambda matrix, seed: SimpleNamespace(
            matrix=matrix, b=input_matrix(matrix.num_cols, SWEEP_B_COLS, seed)
        ),
        sample_check=_sample_check,
        description="sparse-dense matrix multiply C = A @ B (Listing 4)",
    )
)
