"""``python -m repro`` entry point."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe: exit
        # quietly, the POSIX way.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        code = 0
    sys.exit(code)
